//! The per-cluster metrics registry: cheap counters and bounded
//! histograms, merged deterministically in cluster order.

use crate::event::{TraceEvent, TraceSink, TripCause};
use crate::RingBuffer;

/// Number of histogram buckets.  Bucket `b` counts values whose bit width
/// is `b` (i.e. `2^(b-1) <= v < 2^b`), with bucket 0 counting zeros and
/// the last bucket absorbing everything wider — so distances up to
/// `2^(HIST_BUCKETS-2)` land in their own power-of-two bucket.
pub const HIST_BUCKETS: usize = 16;

/// A fixed-size power-of-two histogram.  No allocation, `O(1)` record,
/// element-wise merge — the deterministic building block for
/// shift-distance and backtrack-depth distributions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundedHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl BoundedHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> BoundedHistogram {
        BoundedHistogram::default()
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Merge another histogram into this one (element-wise; associative
    /// and commutative, but the engine always merges in cluster order).
    pub fn merge(&mut self, other: &BoundedHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets as `(upper_bound_inclusive, count)` pairs;
    /// the last bucket's bound is `u64::MAX`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_bound(b), c))
    }

    /// Inclusive upper bound of bucket `b`.
    pub fn bucket_bound(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// The raw bucket counts (checkpoint capture).
    pub fn raw_buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Rebuild a histogram from previously captured parts (checkpoint
    /// restore).  `count`/`sum`/`max` are taken as recorded because `sum`
    /// and `max` are not derivable from the buckets.
    pub fn from_parts(buckets: [u64; HIST_BUCKETS], count: u64, sum: u64, max: u64) -> Self {
        BoundedHistogram {
            buckets,
            count,
            sum,
            max,
        }
    }
}

/// The per-cluster slice of the metrics registry.  Plain counters — no
/// interior mutability, no atomics; one recorder belongs to exactly one
/// cluster search, and cross-cluster totals come from merging in cluster
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Predicate tests per 1-based pattern position (`[j-1]`), the
    /// paper's §7 metric broken down by element.
    pub tests_per_position: Vec<u64>,
    /// Distribution of shift distances taken on realigns (in pattern
    /// elements; naive restarts record distance 1).
    pub shifts: BoundedHistogram,
    /// Distribution of backward input-cursor moves (backtrack depth in
    /// tuples), derived from consecutive test positions exactly like the
    /// paper's "backtracking episodes".
    pub backtracks: BoundedHistogram,
    /// Matches retained.
    pub matches: u64,
    /// Governor credit-batch flushes (0 when ungoverned).
    pub governor_flushes: u64,
    /// Why the governor cut this cluster short, if it did.
    pub trip: Option<TripCause>,
}

impl ClusterMetrics {
    /// A registry for a pattern of `positions` elements.
    pub fn new(positions: usize) -> ClusterMetrics {
        ClusterMetrics {
            tests_per_position: vec![0; positions],
            ..ClusterMetrics::default()
        }
    }

    /// Total predicate tests across all positions — must equal the
    /// engine's `EvalCounter` total bit for bit.
    pub fn total_tests(&self) -> u64 {
        self.tests_per_position.iter().sum()
    }

    /// Merge another cluster's metrics into this one.  Callers merge in
    /// cluster order; the first recorded trip cause wins.
    pub fn merge(&mut self, other: &ClusterMetrics) {
        if self.tests_per_position.len() < other.tests_per_position.len() {
            self.tests_per_position
                .resize(other.tests_per_position.len(), 0);
        }
        for (a, b) in self
            .tests_per_position
            .iter_mut()
            .zip(&other.tests_per_position)
        {
            *a += b;
        }
        self.shifts.merge(&other.shifts);
        self.backtracks.merge(&other.backtracks);
        self.matches += other.matches;
        self.governor_flushes += other.governor_flushes;
        if self.trip.is_none() {
            self.trip = other.trip;
        }
    }
}

/// The per-cluster recorder the engine arms: folds every [`TraceEvent`]
/// into the [`ClusterMetrics`] registry and (when a capacity is given)
/// retains the event stream in a bounded [`RingBuffer`] for replay.
///
/// Backtrack depth is derived here rather than emitted by the engines:
/// whenever a test event's input position moves backwards, the distance
/// is one backtrack episode — the same definition the paper applies to
/// its Figure 5 trajectories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterRecorder {
    /// The metrics registry being populated.
    pub metrics: ClusterMetrics,
    /// The bounded event recorder (capacity 0 when only profiling).
    pub events: RingBuffer,
    /// Input position of the last test event (backtrack derivation).
    last_i: u32,
}

impl ClusterRecorder {
    /// A recorder for a pattern of `positions` elements.
    /// `trace_capacity` bounds the retained event stream; pass 0 to keep
    /// metrics only.
    pub fn new(positions: usize, trace_capacity: usize) -> ClusterRecorder {
        ClusterRecorder {
            metrics: ClusterMetrics::new(positions),
            events: RingBuffer::new(trace_capacity),
            last_i: 0,
        }
    }

    /// Input position of the last test event (checkpoint capture; needed
    /// so a restored recorder derives backtrack depth identically).
    pub fn last_i(&self) -> u32 {
        self.last_i
    }

    /// Rebuild a recorder mid-stream from previously captured parts
    /// (checkpoint restore).
    pub fn from_parts(metrics: ClusterMetrics, events: RingBuffer, last_i: u32) -> Self {
        ClusterRecorder {
            metrics,
            events,
            last_i,
        }
    }

    /// Record one governor credit flush (metrics only, not an event).
    #[inline]
    pub fn governor_flush(&mut self) {
        self.metrics.governor_flushes += 1;
    }
}

impl TraceSink for ClusterRecorder {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Advance { i, j } | TraceEvent::Fail { i, j } => {
                if let Some(slot) = self.metrics.tests_per_position.get_mut(j as usize - 1) {
                    *slot += 1;
                }
                if i < self.last_i {
                    self.metrics.backtracks.record(u64::from(self.last_i - i));
                }
                self.last_i = i;
            }
            TraceEvent::Shift { dist, .. } => self.metrics.shifts.record(u64::from(dist)),
            TraceEvent::Next { .. } => {}
            TraceEvent::MatchEmitted { .. } => self.metrics.matches += 1,
            TraceEvent::GovernorTrip { cause } => {
                if self.metrics.trip.is_none() {
                    self.metrics.trip = Some(cause);
                }
            }
            // Session-level streaming events; a streaming session records
            // them into its own stream log, so they normally never reach a
            // per-cluster recorder.  If one does, keep the event stream
            // faithful without folding anything into the metrics.
            TraceEvent::Feed { .. }
            | TraceEvent::Quarantine { .. }
            | TraceEvent::Checkpoint { .. } => {}
        }
        self.events.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = BoundedHistogram::new();
        for v in [0, 1, 2, 3, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1018);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 4 → bound 7;
        // 8 → bound 15; 1000 → bound 1023.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (15, 1), (1023, 1)]
        );
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = BoundedHistogram::new();
        a.record(1);
        a.record(5);
        let mut b = BoundedHistogram::new();
        b.record(5);
        b.record(100);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum(), 111);
        assert_eq!(merged.max(), 100);
    }

    #[test]
    fn recorder_folds_events_into_metrics() {
        let mut r = ClusterRecorder::new(3, 16);
        r.record(TraceEvent::Advance { i: 1, j: 1 });
        r.record(TraceEvent::Advance { i: 2, j: 2 });
        r.record(TraceEvent::Fail { i: 3, j: 3 });
        // Backtrack: cursor jumps from 3 back to 2 (depth 1).
        r.record(TraceEvent::Fail { i: 2, j: 1 });
        r.record(TraceEvent::Shift { j: 3, dist: 2 });
        r.record(TraceEvent::Next { j: 3, k: 1 });
        r.record(TraceEvent::MatchEmitted { start: 1, end: 3 });
        r.record(TraceEvent::GovernorTrip {
            cause: TripCause::Deadline,
        });
        assert_eq!(r.metrics.tests_per_position, vec![2, 1, 1]);
        assert_eq!(r.metrics.total_tests(), 4);
        assert_eq!(r.metrics.backtracks.count(), 1);
        assert_eq!(r.metrics.backtracks.max(), 1);
        assert_eq!(r.metrics.shifts.count(), 1);
        assert_eq!(r.metrics.shifts.sum(), 2);
        assert_eq!(r.metrics.matches, 1);
        assert_eq!(r.metrics.trip, Some(TripCause::Deadline));
        assert_eq!(r.events.len(), 8);
    }

    #[test]
    fn metrics_merge_accumulates_in_order() {
        let mut a = ClusterMetrics::new(2);
        a.tests_per_position = vec![3, 1];
        a.matches = 1;
        let mut b = ClusterMetrics::new(2);
        b.tests_per_position = vec![2, 2];
        b.trip = Some(TripCause::StepBudget);
        a.merge(&b);
        assert_eq!(a.tests_per_position, vec![5, 3]);
        assert_eq!(a.total_tests(), 8);
        assert_eq!(a.matches, 1);
        assert_eq!(a.trip, Some(TripCause::StepBudget));
    }
}
