//! Shared pattern-set counters: what one shared pass over N standing
//! queries saved relative to N solo passes.
//!
//! The executor's per-query [`crate::ExecutionProfile`]s stay bit-identical
//! to solo runs under sharing (that is the subsystem's core guarantee), so
//! the *set-level* effect lives in its own registry: how many logical
//! predicate tests the member queries charged (`tests_logical`), how many
//! physical evaluations actually ran (`tests_evaluated`), and how many
//! were answered from the shared memo (`tests_saved`, of which
//! `tests_shared` were served across queries or derived through the
//! cross-query implication lattice).  All counters are deterministic for
//! the batch `execute_set` path: caches are per-cluster, members run in
//! query order within a cluster, and merges happen in cluster order — the
//! same thread-count-invariance recipe as [`crate::ClusterMetrics`].

use crate::metrics::BoundedHistogram;
use std::fmt::Write as _;

/// Compile- and run-time counters for one shared pattern-set execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternSetStats {
    /// Queries in the set.
    pub queries: usize,
    /// Shared groups formed (same `CLUSTER BY`/`SEQUENCE BY`, forward).
    pub groups: usize,
    /// Queries that fell back to a solo pass (unshareable).
    pub solo: usize,
    /// Distinct purely-local predicate classes interned across the set.
    pub classes: usize,
    /// Nodes in the class-sequence prefix trie (excluding the root).
    pub trie_nodes: usize,
    /// Cross-class implication edges in the lattice.
    pub implication_edges: usize,
    /// Per-query depth of the prefix shared with at least one other query
    /// (the trie's payoff, as a distribution).
    pub shared_prefix_depth: BoundedHistogram,
    /// Logical predicate tests charged across all member queries — equal
    /// to the sum of the solo runs' `predicate_tests` by construction.
    pub tests_logical: u64,
    /// Physical predicate evaluations performed
    /// (`tests_logical - tests_saved`).
    pub tests_evaluated: u64,
    /// Logical tests answered from the shared memo instead of evaluated.
    pub tests_saved: u64,
    /// The subset of `tests_saved` served *across* queries: a hit on an
    /// entry another query evaluated, or on an entry derived through the
    /// implication lattice.
    pub tests_shared: u64,
}

impl PatternSetStats {
    /// Fold another set's counters into this one — the multi-channel
    /// roll-up the server's `/metrics` endpoint serves (one registry per
    /// channel, one exposition per scrape).
    pub fn absorb(&mut self, other: &PatternSetStats) {
        self.queries += other.queries;
        self.groups += other.groups;
        self.solo += other.solo;
        self.classes += other.classes;
        self.trie_nodes += other.trie_nodes;
        self.implication_edges += other.implication_edges;
        self.shared_prefix_depth.merge(&other.shared_prefix_depth);
        self.tests_logical += other.tests_logical;
        self.tests_evaluated += other.tests_evaluated;
        self.tests_saved += other.tests_saved;
        self.tests_shared += other.tests_shared;
    }

    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pattern set: {} queries, {} shared group(s), {} solo",
            self.queries, self.groups, self.solo
        );
        let _ = writeln!(
            out,
            "  compile: {} classes, {} trie nodes, {} implication edges, \
             shared prefix depth max {} mean {:.2}",
            self.classes,
            self.trie_nodes,
            self.implication_edges,
            self.shared_prefix_depth.max(),
            self.shared_prefix_depth.mean()
        );
        let _ = writeln!(
            out,
            "  tests: {} logical, {} evaluated, {} saved ({} cross-query)",
            self.tests_logical, self.tests_evaluated, self.tests_saved, self.tests_shared
        );
        out
    }

    /// JSON object, same dialect as [`crate::ExecutionProfile::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"queries\":{},\"groups\":{},\"solo\":{},\"classes\":{},\
             \"trie_nodes\":{},\"implication_edges\":{},\
             \"shared_prefix_depth_max\":{},\"tests_logical\":{},\
             \"tests_evaluated\":{},\"tests_saved\":{},\"tests_shared\":{}}}",
            self.queries,
            self.groups,
            self.solo,
            self.classes,
            self.trie_nodes,
            self.implication_edges,
            self.shared_prefix_depth.max(),
            self.tests_logical,
            self.tests_evaluated,
            self.tests_saved,
            self.tests_shared,
        );
        out
    }

    /// Prometheus text exposition (counter/gauge blocks plus the prefix
    /// depth histogram), used by the server's `/metrics` endpoint.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let counters: [(&str, &str, u64); 4] = [
            (
                "sqlts_patternset_tests_logical",
                "Logical predicate tests charged across shared-set members",
                self.tests_logical,
            ),
            (
                "sqlts_patternset_tests_evaluated",
                "Physical predicate evaluations performed by the shared pass",
                self.tests_evaluated,
            ),
            (
                "sqlts_patternset_tests_saved",
                "Logical tests answered from the shared memo",
                self.tests_saved,
            ),
            (
                "sqlts_patternset_tests_shared",
                "Saved tests served across queries or via implication",
                self.tests_shared,
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let gauges: [(&str, &str, u64); 4] = [
            (
                "sqlts_patternset_queries",
                "Queries in the shared pattern set",
                self.queries as u64,
            ),
            (
                "sqlts_patternset_classes",
                "Distinct purely-local predicate classes interned",
                self.classes as u64,
            ),
            (
                "sqlts_patternset_trie_nodes",
                "Nodes in the class-sequence prefix trie",
                self.trie_nodes as u64,
            ),
            (
                "sqlts_patternset_implication_edges",
                "Cross-class implication edges in the lattice",
                self.implication_edges as u64,
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        crate::profile::write_prometheus_histogram(
            &mut out,
            "sqlts_patternset_shared_prefix_depth",
            "",
            &self.shared_prefix_depth,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PatternSetStats {
        let mut s = PatternSetStats {
            queries: 8,
            groups: 1,
            solo: 0,
            classes: 3,
            trie_nodes: 5,
            implication_edges: 2,
            tests_logical: 800,
            tests_evaluated: 130,
            tests_saved: 670,
            tests_shared: 640,
            ..PatternSetStats::default()
        };
        for _ in 0..8 {
            s.shared_prefix_depth.record(2);
        }
        s
    }

    #[test]
    fn text_and_json_carry_the_counters() {
        let s = sample();
        let text = s.to_text();
        assert!(text.contains("8 queries"), "{text}");
        assert!(text.contains("670 saved (640 cross-query)"), "{text}");
        let json = s.to_json();
        assert!(json.contains("\"tests_saved\":670"), "{json}");
        assert!(json.contains("\"tests_shared\":640"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let s = sample();
        let prom = s.to_prometheus();
        for needle in [
            "# TYPE sqlts_patternset_tests_shared counter",
            "sqlts_patternset_tests_shared 640",
            "# TYPE sqlts_patternset_queries gauge",
            "sqlts_patternset_queries 8",
            "# TYPE sqlts_patternset_shared_prefix_depth histogram",
            "sqlts_patternset_shared_prefix_depth_count 8",
        ] {
            assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
        }
        // Invariant the CI smoke leans on: evaluated + saved == logical.
        assert_eq!(s.tests_evaluated + s.tests_saved, s.tests_logical);
    }
}
