//! Structured span log: begin/end records with monotonic timestamps,
//! parent ids and key=value fields, written as JSON-lines or aligned
//! text.
//!
//! The rest of `sqlts-trace` is inert — recorders that never read a
//! clock so merged profiles are reproducible.  A *span log* is the
//! documented exception: it exists precisely to answer "where did wall
//! time go on this server, in order", so an armed [`SpanLog`] reads the
//! process monotonic clock ([`Instant`]) on every record.  The
//! discipline the rest of the crate follows still applies at the
//! call sites: an unarmed server holds no `SpanLog` at all, so the hot
//! path pays one predictable `if let Some(..)` branch and query output
//! is bit-identical armed or not (spans observe, never steer).
//!
//! # Record shape
//!
//! Every record carries a kind (`"b"` span begin, `"e"` span end,
//! `"ev"` instantaneous event), a monotonic timestamp in nanoseconds
//! since the log was opened, a level, a name, and flat string
//! key=value fields.  Begin records also carry the fresh span `id` and
//! the `parent` id (0 = root).  JSON form, one object per line:
//!
//! ```text
//! {"ts":10250,"k":"b","lvl":"debug","name":"wal_append","id":7,"parent":3,"channel":"nyse"}
//! {"ts":91833,"k":"e","lvl":"debug","name":"wal_append","id":7}
//! {"ts":95001,"k":"ev","lvl":"warn","name":"slow_frame","ms":"125"}
//! ```
//!
//! The begin and end of a span share one `id`, so an offline reader
//! (`sqlts trace-agg`) can rebuild the tree and charge each span its
//! self time.  Filtering happens at [`SpanLog::begin`]: a span below
//! the configured level returns id 0, and [`SpanLog::end`] of id 0 is
//! a no-op — begin/end stay balanced *per file* at every level.
//!
//! # Rotation
//!
//! The log is append-only (crash-tolerant by construction: a torn last
//! line is detectable and every earlier line is intact — same argument
//! as the server WAL).  When a write pushes the file past the
//! configured rotation size the current file is renamed to `<path>.1`
//! (replacing any previous rotation) and a fresh file is started, so a
//! long-running server holds at most two generations on disk.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::profile::json_escape;

/// Severity of a span or event, ordered from most to least severe.
///
/// A [`SpanLog`] configured at `Info` writes `Error`, `Warn` and
/// `Info` records and filters `Debug` ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable trouble: I/O failures, poisoned channels.
    Error,
    /// Degraded operation worth paging on: governor trips, quarantines,
    /// slow frames, drain and recovery transitions.
    Warn,
    /// Lifecycle landmarks: accepts, subscriptions, checkpoints.
    Info,
    /// Hot-path spans: frame decode, WAL append, fsync, fan-out.
    Debug,
}

impl Level {
    /// The lowercase wire name (`"error"`, `"warn"`, `"info"`,
    /// `"debug"`), used both in records and on the command line.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a command-line level name.  Returns `None` for anything
    /// that is not exactly one of the four wire names.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// On-disk encoding of the span log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// One JSON object per line — machine-readable, the format
    /// `sqlts trace-agg` consumes.
    Json,
    /// `ts level kind name key=value…` — human-skimmable.
    Text,
}

impl LogFormat {
    /// Parse a command-line format name (`"json"` or `"text"`).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "json" => Some(LogFormat::Json),
            "text" => Some(LogFormat::Text),
            _ => None,
        }
    }
}

/// Everything guarded by the writer lock: the open file, its current
/// size, and the rotation bookkeeping.
struct LogInner {
    file: File,
    path: PathBuf,
    bytes: u64,
    rotate_bytes: u64,
}

/// A thread-safe structured span log.
///
/// Shared by `Arc` across every server thread; each record formats its
/// line outside the lock and holds the writer mutex only for the
/// append (and the occasional rotation).  Span ids come from a single
/// process-wide counter so they are unique across threads without
/// coordination beyond one `fetch_add`.
pub struct SpanLog {
    inner: Mutex<LogInner>,
    level: Level,
    format: LogFormat,
    epoch: Instant,
    next_id: AtomicU64,
}

impl SpanLog {
    /// Open (appending) or create the log file at `path`.
    ///
    /// `rotate_bytes` of 0 disables rotation.  The epoch for record
    /// timestamps is the moment of this call.
    pub fn open(
        path: &Path,
        level: Level,
        format: LogFormat,
        rotate_bytes: u64,
    ) -> io::Result<SpanLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(SpanLog {
            inner: Mutex::new(LogInner {
                file,
                path: path.to_path_buf(),
                bytes,
                rotate_bytes,
            }),
            level,
            format,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
        })
    }

    /// The configured filter level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Nanoseconds since the log was opened (the `ts` of a record
    /// written now).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Would a record at `level` be written?
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Begin a span.  Returns the fresh span id, or 0 if `level` is
    /// filtered out (pass 0 straight back to [`SpanLog::end`]; it is a
    /// no-op).  `parent` is the enclosing span's id, 0 for a root.
    pub fn begin(&self, level: Level, name: &str, parent: u64, fields: &[(&str, &str)]) -> u64 {
        if !self.enabled(level) {
            return 0;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.write_record(level, "b", name, Some((id, parent)), fields);
        id
    }

    /// End the span `id` begun at `level`.  A 0 id (filtered begin) is
    /// ignored, so callers never re-check the level on the way out.
    pub fn end(&self, level: Level, name: &str, id: u64, fields: &[(&str, &str)]) {
        if id == 0 || !self.enabled(level) {
            return;
        }
        self.write_record(level, "e", name, Some((id, u64::MAX)), fields);
    }

    /// Record an instantaneous event (no duration, no id).
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, &str)]) {
        if !self.enabled(level) {
            return;
        }
        self.write_record(level, "ev", name, None, fields);
    }

    /// Format one record and append it under the writer lock, rotating
    /// first if the previous write crossed the size threshold.  Write
    /// errors are swallowed: a full disk must degrade observability,
    /// never the queries being observed.
    fn write_record(
        &self,
        level: Level,
        kind: &str,
        name: &str,
        ids: Option<(u64, u64)>,
        fields: &[(&str, &str)],
    ) {
        let ts = self.now_ns();
        let mut line = String::with_capacity(96);
        match self.format {
            LogFormat::Json => {
                line.push_str("{\"ts\":");
                line.push_str(&ts.to_string());
                line.push_str(",\"k\":\"");
                line.push_str(kind);
                line.push_str("\",\"lvl\":\"");
                line.push_str(level.as_str());
                line.push_str("\",\"name\":\"");
                json_escape(name, &mut line);
                line.push('"');
                if let Some((id, parent)) = ids {
                    line.push_str(",\"id\":");
                    line.push_str(&id.to_string());
                    if parent != u64::MAX {
                        line.push_str(",\"parent\":");
                        line.push_str(&parent.to_string());
                    }
                }
                for (k, v) in fields {
                    line.push_str(",\"");
                    json_escape(k, &mut line);
                    line.push_str("\":\"");
                    json_escape(v, &mut line);
                    line.push('"');
                }
                line.push_str("}\n");
            }
            LogFormat::Text => {
                line.push_str(&ts.to_string());
                line.push(' ');
                line.push_str(level.as_str());
                line.push(' ');
                line.push_str(kind);
                line.push(' ');
                line.push_str(name);
                if let Some((id, parent)) = ids {
                    line.push_str(" id=");
                    line.push_str(&id.to_string());
                    if parent != u64::MAX {
                        line.push_str(" parent=");
                        line.push_str(&parent.to_string());
                    }
                }
                for (k, v) in fields {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line.push('\n');
            }
        }
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.rotate_bytes > 0 && inner.bytes >= inner.rotate_bytes {
            let _ = rotate(&mut inner);
        }
        if inner.file.write_all(line.as_bytes()).is_ok() {
            inner.bytes += line.len() as u64;
        }
    }

    /// Flush buffered OS state (the log writes through an unbuffered
    /// `File`, so this is a plain `flush` for symmetry, not an fsync —
    /// the span log is diagnostics, not durability-critical state).
    pub fn flush(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            let _ = inner.file.flush();
        }
    }
}

/// Rename the live file to `<path>.1` (replacing any previous
/// generation) and start a fresh one.  On failure the current file is
/// kept and writing continues — rotation is best-effort.
fn rotate(inner: &mut LogInner) -> io::Result<()> {
    let mut rotated = inner.path.clone().into_os_string();
    rotated.push(".1");
    std::fs::rename(&inner.path, &rotated)?;
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&inner.path)?;
    inner.file = file;
    inner.bytes = 0;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-span-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        let mut rotated = p.clone().into_os_string();
        rotated.push(".1");
        let _ = fs::remove_file(PathBuf::from(rotated));
        p
    }

    #[test]
    fn level_ordering_and_round_trip() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn json_records_carry_ids_fields_and_balance() {
        let path = temp_path("basic.jsonl");
        let log = SpanLog::open(&path, Level::Debug, LogFormat::Json, 0).unwrap();
        let root = log.begin(Level::Info, "dispatch", 0, &[("verb", "FEED")]);
        assert_ne!(root, 0);
        let child = log.begin(Level::Debug, "wal_append", root, &[("channel", "nyse")]);
        assert_ne!(child, 0);
        log.end(Level::Debug, "wal_append", child, &[("bytes", "512")]);
        log.event(Level::Warn, "slow_frame", &[("ms", "125")]);
        log.end(Level::Info, "dispatch", root, &[]);
        drop(log);

        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"k\":\"b\"") && lines[0].contains("\"name\":\"dispatch\""));
        assert!(lines[0].contains("\"parent\":0") && lines[0].contains("\"verb\":\"FEED\""));
        assert!(lines[1].contains(&format!("\"id\":{child},\"parent\":{root}")));
        assert!(lines[2].contains("\"k\":\"e\"") && lines[2].contains("\"bytes\":\"512\""));
        assert!(!lines[2].contains("parent"), "end records carry no parent");
        assert!(lines[3].contains("\"k\":\"ev\"") && lines[3].contains("\"lvl\":\"warn\""));
        assert!(lines[4].contains("\"k\":\"e\"") && lines[4].contains(&format!("\"id\":{root}")));
        // Timestamps are monotone non-decreasing down the file.
        let mut last = 0u64;
        for line in &lines {
            let ts: u64 = line
                .split("\"ts\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(ts >= last);
            last = ts;
        }
    }

    #[test]
    fn level_filter_returns_zero_id_and_writes_nothing() {
        let path = temp_path("filter.jsonl");
        let log = SpanLog::open(&path, Level::Warn, LogFormat::Json, 0).unwrap();
        let id = log.begin(Level::Debug, "wal_append", 0, &[]);
        assert_eq!(id, 0, "filtered begin returns the sentinel id");
        log.end(Level::Debug, "wal_append", id, &[]); // must be a no-op
        log.event(Level::Info, "accept", &[]);
        log.event(Level::Warn, "governor_trip", &[("cause", "budget")]);
        drop(log);
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "only the warn event is written");
        assert!(text.contains("governor_trip"));
    }

    #[test]
    fn text_format_is_line_per_record() {
        let path = temp_path("fmt.log");
        let log = SpanLog::open(&path, Level::Debug, LogFormat::Text, 0).unwrap();
        let id = log.begin(Level::Debug, "fsync", 3, &[("channel", "a")]);
        log.end(Level::Debug, "fsync", id, &[]);
        drop(log);
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with(&format!("debug b fsync id={id} parent=3 channel=a")));
        assert!(lines[1].ends_with(&format!("debug e fsync id={id}")));
    }

    #[test]
    fn fields_are_json_escaped() {
        let path = temp_path("escape.jsonl");
        let log = SpanLog::open(&path, Level::Debug, LogFormat::Json, 0).unwrap();
        log.event(Level::Info, "open", &[("channel", "a\"b\\c\nd")]);
        drop(log);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"channel\":\"a\\\"b\\\\c\\nd\""));
        assert_eq!(
            text.lines().count(),
            1,
            "escaped newline must not split the line"
        );
    }

    #[test]
    fn rotation_renames_to_dot_one_and_restarts() {
        let path = temp_path("rotate.jsonl");
        // Sized so the 32 records (~55 bytes each) cross the threshold
        // exactly once: one rotation, nothing lost.
        let log = SpanLog::open(&path, Level::Debug, LogFormat::Json, 1024).unwrap();
        for i in 0..32 {
            log.event(Level::Info, "tick", &[("i", &i.to_string())]);
        }
        drop(log);
        let mut rotated = path.clone().into_os_string();
        rotated.push(".1");
        let rotated = PathBuf::from(rotated);
        assert!(rotated.exists(), "rotation must have produced <path>.1");
        let live = fs::read_to_string(&path).unwrap();
        let old = fs::read_to_string(&rotated).unwrap();
        assert!(fs::metadata(&rotated).unwrap().len() >= 1024);
        // No record is lost or torn across the single rotation boundary.
        let total = live.lines().count() + old.lines().count();
        assert_eq!(total, 32, "all records accounted for");
        for line in live.lines().chain(old.lines()) {
            assert!(line.starts_with("{\"ts\":") && line.ends_with('}'));
        }
    }

    #[test]
    fn reopen_appends_and_ids_restart_safely() {
        let path = temp_path("reopen.jsonl");
        {
            let log = SpanLog::open(&path, Level::Info, LogFormat::Json, 0).unwrap();
            let id = log.begin(Level::Info, "session", 0, &[]);
            log.end(Level::Info, "session", id, &[]);
        }
        {
            let log = SpanLog::open(&path, Level::Info, LogFormat::Json, 0).unwrap();
            log.event(Level::Info, "recovered", &[]);
        }
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count(),
            3,
            "second open appended, not truncated"
        );
    }
}
