//! Fault injection at the durability sites (`--features failpoints`):
//! a WAL append that fails must reject the FEED without fanning out, a
//! failed fsync must surface without corrupting the log, and an injected
//! replay error must abort recovery with a typed runtime error — never a
//! panic, never silent data loss.

#![cfg(feature = "failpoints")]

use sqlts_relation::failpoints::{self, FailAction};
use sqlts_server::wal::{scan_wal, segment_path, ChannelWal, FsyncPolicy, WalError};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The failpoint registry is process-global; serialize the tests.
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    guard
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-wal-fp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn injected_append_failure_leaves_the_log_untouched() {
    let _guard = lock();
    let path = temp_path("append.wal");
    let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
    wal.append("a,1", 1).unwrap();
    let before = std::fs::read(segment_path(&path, 0)).unwrap();
    failpoints::configure("wal::append", FailAction::InjectError);
    let err = wal.append("b,2", 1).unwrap_err();
    assert!(matches!(err, WalError::Io(_)), "{err}");
    failpoints::reset();
    // The injected failure fired before any bytes were written: the log
    // still scans clean with exactly the pre-failure content.
    assert_eq!(std::fs::read(segment_path(&path, 0)).unwrap(), before);
    let scan = scan_wal(&path).unwrap();
    assert_eq!(scan.rows_total, 1);
    assert!(scan.corruption.is_none());
    // And the log keeps working once the fault clears.
    wal.append("b,2", 1).unwrap();
    assert_eq!(scan_wal(&path).unwrap().rows_total, 2);
}

#[test]
fn injected_fsync_failure_surfaces_but_preserves_appended_records() {
    let _guard = lock();
    let path = temp_path("fsync.wal");
    let mut wal = ChannelWal::create(&path, FsyncPolicy::Every).unwrap();
    failpoints::configure("wal::fsync", FailAction::InjectError);
    let err = wal.append("a,1", 1).unwrap_err();
    assert!(matches!(err, WalError::Io(_)), "{err}");
    failpoints::reset();
    // The record reached the file (only the sync failed): a restart that
    // survives the page cache still replays it.
    let scan = scan_wal(&path).unwrap();
    assert_eq!(scan.rows_total, 1);
    assert!(scan.corruption.is_none());
}

#[test]
fn injected_fsync_failure_fails_every_feeder_in_a_group_commit_batch() {
    let _guard = lock();
    use sqlts_server::wal::GroupCommit;
    use std::sync::Arc;
    use std::time::Duration;

    let path = temp_path("group.wal");
    let wal = Arc::new(Mutex::new(
        ChannelWal::create(&path, FsyncPolicy::Group { window_us: 2_000 }).unwrap(),
    ));
    let group = Arc::new(GroupCommit::default());
    // Four feeders append under the lock, then wait for durability as one
    // batch.  The injected fsync failure must reach *all* of them — none
    // may ack a row the disk never saw.
    failpoints::configure("wal::fsync", FailAction::InjectError);
    let mut ends = Vec::new();
    for i in 0..4u64 {
        let mut w = wal.lock().unwrap();
        w.append(&format!("f{i},1"), 1).unwrap();
        ends.push(w.rows_total());
    }
    let handles: Vec<_> = ends
        .into_iter()
        .map(|end| {
            let (group, wal) = (Arc::clone(&group), Arc::clone(&wal));
            std::thread::spawn(move || {
                group.wait_durable(end, Duration::from_millis(2), || {
                    let mut w = wal.lock().unwrap();
                    w.sync().map_err(|e| e.to_string())?;
                    Ok(w.rows_total())
                })
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    failpoints::reset();
    assert!(
        results.iter().all(|r| r.is_err()),
        "every batched feeder must see the sync failure: {results:?}"
    );
    // The rows themselves reached the file; once the fault clears a
    // fresh batch (or a restart) makes them durable.
    group
        .wait_durable(4, Duration::ZERO, || {
            let mut w = wal.lock().unwrap();
            w.sync().map_err(|e| e.to_string())?;
            Ok(w.rows_total())
        })
        .unwrap();
    assert_eq!(scan_wal(&path).unwrap().rows_total, 4);
}

#[test]
fn injected_replay_failure_is_a_typed_runtime_error() {
    let _guard = lock();
    use sqlts_core::{SessionWorker, SessionWorkerConfig};
    use sqlts_server::recover::{replay_channel, ReplaySub, ServeError};
    use sqlts_server::wal::WalFrame;

    let schema = sqlts_relation::Schema::new([
        ("name", sqlts_relation::ColumnType::Str),
        ("day", sqlts_relation::ColumnType::Int),
        ("price", sqlts_relation::ColumnType::Float),
    ])
    .unwrap();
    let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
               WHERE Z.price < X.price";
    let worker = SessionWorker::spawn(SessionWorkerConfig::new("fp", sql, schema.clone())).unwrap();
    let frames = vec![WalFrame {
        start: 0,
        nrows: 1,
        payload: "AAA,1,10.0".into(),
    }];
    failpoints::configure("recover::replay", FailAction::InjectError);
    let mut subs = [ReplaySub {
        id: "fp",
        resume_ordinal: 0,
        worker: &worker,
    }];
    let err = replay_channel("q", &schema, &frames, &mut subs).unwrap_err();
    failpoints::reset();
    assert!(matches!(err, ServeError::Runtime(_)), "{err:?}");
    assert_eq!(err.exit_code(), 4);
    // The worker is still healthy: the failure was injected before any
    // row was delivered.
    let mut subs = [ReplaySub {
        id: "fp",
        resume_ordinal: 0,
        worker: &worker,
    }];
    let stats = replay_channel("q", &schema, &frames, &mut subs).unwrap();
    assert_eq!(stats.rows_replayed, 1);
    worker.finish().unwrap();
}
