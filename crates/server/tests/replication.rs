//! Replication fault suite over real sockets: a primary streaming its
//! WAL to a warm standby must survive standby crashes (resync), reject
//! forged frames without poisoning either side, repair a torn standby
//! WAL tail at promotion, and fail over automatically when armed —
//! always producing byte-identical results for every row the ack mode
//! promised durable.

use sqlts_server::{
    read_frame, write_frame, FrameEvent, FsyncPolicy, ReplAck, Server, ServerConfig,
};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SQL: &str = "SELECT X.name, Z.day AS day FROM q CLUSTER BY name \
                   SEQUENCE BY day AS (X, *Y, Z) \
                   WHERE Y.price > Y.previous.price \
                   AND Z.price < Z.previous.price";

fn frames() -> Vec<String> {
    (0..8)
        .map(|f| {
            let mut body = String::new();
            for r in 0..3 {
                let day = f * 3 + r;
                let wave = (day % 5) as f64;
                body.push_str(&format!("AAA,{day},{}\n", 100.0 + 4.0 * wave));
            }
            body
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-repl-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A server running its accept loop on a background thread.
struct Rig {
    server: Arc<Server>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    addr: String,
}

impl Rig {
    fn spawn(config: ServerConfig) -> Rig {
        // Listener ports are recycled across restarts in these tests;
        // retry briefly in case a just-killed rig's socket lingers.
        let deadline = Instant::now() + Duration::from_secs(5);
        let server = loop {
            match Server::bind(config.clone()) {
                Ok(server) => break Arc::new(server),
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("bind {}: {e}", config.listen),
            }
        };
        let addr = server.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (server, stop) = (Arc::clone(&server), Arc::clone(&stop));
            std::thread::spawn(move || {
                let _ = server.run_until(&stop);
            })
        };
        Rig {
            server,
            stop,
            handle: Some(handle),
            addr,
        }
    }

    fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn standby_config(root: &PathBuf) -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".into(),
        data_dir: Some(root.clone()),
        fsync: FsyncPolicy::Off,
        checkpoint_every_frames: 1_000,
        standby: true,
        ..ServerConfig::default()
    }
}

fn primary_config(root: &PathBuf, target: &str, ack: ReplAck) -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".into(),
        data_dir: Some(root.clone()),
        fsync: FsyncPolicy::Off,
        checkpoint_every_frames: 1_000,
        replicate_to: Some(target.to_string()),
        repl_ack: ack,
        ..ServerConfig::default()
    }
}

/// A framed-protocol client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn request(&mut self, payload: &str) -> String {
        write_frame(&mut self.stream, payload).unwrap();
        match read_frame(&mut self.reader, 1 << 24).unwrap() {
            FrameEvent::Payload(text) => text,
            other => panic!("unexpected frame event: {other:?}"),
        }
    }
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn metric(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("missing {name} in:\n{exposition}"))
        .trim()
        .parse()
        .unwrap_or_else(|v| panic!("unparsable {name}: {v}"))
}

/// UNSUBSCRIBE output of an uninterrupted, non-replicated run.
fn reference(frames: &[String]) -> String {
    let rig = Rig::spawn(ServerConfig {
        listen: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&rig.addr);
    client.request("OPEN q name:str,day:int,price:float");
    client.request(&format!("SUBSCRIBE s q\n{SQL}"));
    for frame in frames {
        let reply = client.request(&format!("FEED q\n{frame}"));
        assert!(reply.starts_with("OK fed"), "{reply}");
    }
    client.request("UNSUBSCRIBE s")
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Same polynomial as the WAL/replication codec; reimplemented here so
/// the forged-frame test can build a frame whose CRC is *valid* but
/// whose ordinal gaps.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

#[test]
fn streams_to_the_standby_and_promotes_byte_identically() {
    let all = frames();
    let reference = reference(&all);
    let sroot = temp_dir("e2e-standby");
    let proot = temp_dir("e2e-primary");
    let standby = Rig::spawn(standby_config(&sroot));
    let primary = Rig::spawn(primary_config(&proot, &standby.addr, ReplAck::Sync));

    let mut client = Client::connect(&primary.addr);
    client.request("OPEN q name:str,day:int,price:float");
    client.request(&format!("SUBSCRIBE s q\n{SQL}"));
    for frame in &all {
        let reply = client.request(&format!("FEED q\n{frame}"));
        assert!(reply.starts_with("OK fed 3"), "{reply}");
    }

    // The primary's exposition reports a healthy, caught-up stream...
    let prom = http_get(&primary.addr, "/metrics");
    assert_eq!(metric(&prom, "sqlts_repl_connected"), 1, "{prom}");
    assert_eq!(metric(&prom, "sqlts_repl_lag_rows"), 0, "{prom}");
    assert!(metric(&prom, "sqlts_repl_frames_sent_total") >= 8, "{prom}");
    assert!(metric(&prom, "sqlts_repl_acks_total") >= 8, "{prom}");
    assert_eq!(metric(&prom, "sqlts_standby"), 0, "{prom}");
    let status = http_get(&primary.addr, "/status");
    assert!(status.contains("\"replication\":{\"connected\":true"), "{status}");
    assert!(status.contains("\"standby\":false"), "{status}");
    // ...and the standby's shows the frames landing.
    let sprom = http_get(&standby.addr, "/metrics");
    assert_eq!(metric(&sprom, "sqlts_standby"), 1, "{sprom}");
    assert!(
        metric(&sprom, "sqlts_repl_frames_received_total") >= 8,
        "{sprom}"
    );
    let mut sclient = Client::connect(&standby.addr);
    let status = sclient.request("STATUS s");
    assert!(status.contains("durable_rows=24"), "{status}");

    // Primary dies; the standby takes over with everything sync acks
    // promised.
    // Kill the primary while the feeder is still connected: the drain
    // preserves the subscription (a client *disconnect* would reap it
    // and ship REPL REMOVE).
    primary.kill();
    drop(client);
    let reply = sclient.request("PROMOTE");
    assert!(reply.starts_with("OK promoted channels=1"), "{reply}");
    assert_eq!(
        sclient.request("OPEN q name:str,day:int,price:float"),
        "OK opened q rows=24"
    );
    assert_eq!(sclient.request("UNSUBSCRIBE s"), reference);
    let prom = http_get(&standby.addr, "/metrics");
    assert_eq!(metric(&prom, "sqlts_standby"), 0, "{prom}");
    assert_eq!(metric(&prom, "sqlts_repl_promotions_total"), 1, "{prom}");

    drop(standby);
    let _ = std::fs::remove_dir_all(&sroot);
    let _ = std::fs::remove_dir_all(&proot);
}

#[test]
fn standby_killed_mid_stream_resyncs_and_catches_up() {
    let all = frames();
    let reference = reference(&all);
    let sroot = temp_dir("resync-standby");
    let proot = temp_dir("resync-primary");
    let standby = Rig::spawn(standby_config(&sroot));
    let standby_addr = standby.addr.clone();
    let primary = Rig::spawn(primary_config(&proot, &standby_addr, ReplAck::Async));

    let mut client = Client::connect(&primary.addr);
    client.request("OPEN q name:str,day:int,price:float");
    client.request(&format!("SUBSCRIBE s q\n{SQL}"));
    for frame in &all[..4] {
        client.request(&format!("FEED q\n{frame}"));
    }
    wait_until("standby caught up", || {
        metric(&http_get(&primary.addr, "/metrics"), "sqlts_repl_lag_rows") == 0
    });

    // Kill the standby mid-stream; the primary keeps accepting feeds and
    // keeps retrying the session.
    standby.kill();
    for frame in &all[4..] {
        let reply = client.request(&format!("FEED q\n{frame}"));
        assert!(reply.starts_with("OK fed 3"), "{reply}");
    }

    // Restart the standby on the same address over the same data dir;
    // the primary's next resync scans its own WAL from the standby's
    // durable row count and re-ships the gap.
    let standby = Rig::spawn(ServerConfig {
        listen: standby_addr,
        ..standby_config(&sroot)
    });
    wait_until("resync after standby restart", || {
        metric(&http_get(&primary.addr, "/metrics"), "sqlts_repl_lag_rows") == 0
    });
    let prom = http_get(&primary.addr, "/metrics");
    assert!(
        metric(&prom, "sqlts_repl_resyncs_total") >= 2,
        "a standby restart must force a second resync: {prom}"
    );

    // Kill the primary while the feeder is still connected: the drain
    // preserves the subscription (a client *disconnect* would reap it
    // and ship REPL REMOVE).
    primary.kill();
    drop(client);
    let mut sclient = Client::connect(&standby.addr);
    assert!(sclient.request("PROMOTE").starts_with("OK promoted"));
    assert_eq!(
        sclient.request("OPEN q name:str,day:int,price:float"),
        "OK opened q rows=24"
    );
    assert_eq!(sclient.request("UNSUBSCRIBE s"), reference);

    drop(standby);
    let _ = std::fs::remove_dir_all(&sroot);
    let _ = std::fs::remove_dir_all(&proot);
}

#[test]
fn forged_frames_are_rejected_without_poisoning_either_side() {
    let all = frames();
    let reference = reference(&all[..3].to_vec());
    let sroot = temp_dir("forge-standby");
    let proot = temp_dir("forge-primary");
    let standby = Rig::spawn(standby_config(&sroot));
    let primary = Rig::spawn(primary_config(&proot, &standby.addr, ReplAck::Sync));

    let mut client = Client::connect(&primary.addr);
    client.request("OPEN q name:str,day:int,price:float");
    client.request(&format!("SUBSCRIBE s q\n{SQL}"));
    for frame in &all[..2] {
        client.request(&format!("FEED q\n{frame}"));
    }

    // An attacker (or a corrupting middlebox) speaks the protocol at the
    // standby directly.
    let mut attacker = Client::connect(&standby.addr);
    assert!(attacker.request("REPL HELLO v1").starts_with("OK repl v1"));
    // Bit-flipped payload: the CRC no longer matches.
    let reply = attacker.request("REPL FRAME q 6 1 deadbeef\nAAA,99,1.0");
    assert!(reply.starts_with("ERR 3 "), "{reply}");
    // Valid CRC but a gapping ordinal: refused, never appended.
    let payload = "AAA,99,1.0\n";
    let gap = format!(
        "REPL FRAME q 100 1 {:08x}\n{payload}",
        crc32(payload.as_bytes())
    );
    let reply = attacker.request(&gap);
    assert!(reply.starts_with("ERR 4 "), "{reply}");
    // Rows that fail the channel schema are refused even with a good CRC.
    let bad = "not,a,valid,row\n";
    let forged = format!("REPL FRAME q 6 1 {:08x}\n{bad}", crc32(bad.as_bytes()));
    let reply = attacker.request(&forged);
    assert!(reply.starts_with("ERR 3 "), "{reply}");
    let prom = http_get(&standby.addr, "/metrics");
    assert!(metric(&prom, "sqlts_repl_rejected_frames_total") >= 3, "{prom}");

    // The real stream is unaffected: the primary keeps shipping and the
    // promoted standby holds exactly the fed rows.
    let reply = client.request(&format!("FEED q\n{}", all[2]));
    assert!(reply.starts_with("OK fed 3"), "{reply}");
    // Kill the primary while the feeder is still connected: the drain
    // preserves the subscription (a client *disconnect* would reap it
    // and ship REPL REMOVE).
    primary.kill();
    drop(client);
    let mut sclient = Client::connect(&standby.addr);
    assert!(sclient.request("PROMOTE").starts_with("OK promoted"));
    assert_eq!(
        sclient.request("OPEN q name:str,day:int,price:float"),
        "OK opened q rows=9"
    );
    assert_eq!(sclient.request("UNSUBSCRIBE s"), reference);

    drop(standby);
    let _ = std::fs::remove_dir_all(&sroot);
    let _ = std::fs::remove_dir_all(&proot);
}

#[test]
fn promotion_repairs_a_torn_standby_wal_tail() {
    let all = frames();
    let reference = reference(&all);
    let sroot = temp_dir("torn-standby");
    let proot = temp_dir("torn-primary");
    let standby = Rig::spawn(standby_config(&sroot));
    let primary = Rig::spawn(primary_config(&proot, &standby.addr, ReplAck::Sync));

    let mut client = Client::connect(&primary.addr);
    client.request("OPEN q name:str,day:int,price:float");
    client.request(&format!("SUBSCRIBE s q\n{SQL}"));
    for frame in &all[..4] {
        client.request(&format!("FEED q\n{frame}"));
    }
    // Kill the primary while the feeder is still connected: the drain
    // preserves the subscription (a client *disconnect* would reap it
    // and ship REPL REMOVE).
    primary.kill();
    drop(client);
    standby.kill();

    // The standby's own crash tore its newest WAL segment mid-write.
    let chandir = sroot.join("channels");
    let newest = std::fs::read_dir(&chandir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("q.wal"))
        })
        .max()
        .expect("standby has a replicated WAL segment");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&newest)
        .unwrap();
    file.write_all(b"12 GARBAGE torn tail").unwrap();
    drop(file);

    // Restart over the torn dir and promote: the tolerant scan repairs
    // the tail and promotion replays only intact frames.
    let standby = Rig::spawn(standby_config(&sroot));
    let mut sclient = Client::connect(&standby.addr);
    assert!(sclient.request("PROMOTE").starts_with("OK promoted"));
    assert_eq!(
        sclient.request("OPEN q name:str,day:int,price:float"),
        "OK opened q rows=12",
        "torn garbage must be discarded, intact frames kept"
    );
    for frame in &all[4..] {
        sclient.request(&format!("FEED q\n{frame}"));
    }
    assert_eq!(sclient.request("UNSUBSCRIBE s"), reference);

    drop(standby);
    let _ = std::fs::remove_dir_all(&sroot);
    let _ = std::fs::remove_dir_all(&proot);
}

#[test]
fn armed_standby_promotes_itself_when_the_primary_disconnects() {
    let all = frames();
    let reference = reference(&all);
    let sroot = temp_dir("auto-standby");
    let proot = temp_dir("auto-primary");
    let standby = Rig::spawn(ServerConfig {
        promote_on_disconnect: true,
        ..standby_config(&sroot)
    });
    let primary = Rig::spawn(primary_config(&proot, &standby.addr, ReplAck::Sync));

    let mut client = Client::connect(&primary.addr);
    client.request("OPEN q name:str,day:int,price:float");
    client.request(&format!("SUBSCRIBE s q\n{SQL}"));
    for frame in &all[..5] {
        client.request(&format!("FEED q\n{frame}"));
    }
    assert!(standby.server.is_standby());

    // The primary dies; losing its replication connection is the
    // failover trigger.
    // Kill the primary while the feeder is still connected: the drain
    // preserves the subscription (a client *disconnect* would reap it
    // and ship REPL REMOVE).
    primary.kill();
    drop(client);
    wait_until("automatic promotion", || !standby.server.is_standby());
    let mut sclient = Client::connect(&standby.addr);
    assert_eq!(
        sclient.request("OPEN q name:str,day:int,price:float"),
        "OK opened q rows=15"
    );
    for frame in &all[5..] {
        sclient.request(&format!("FEED q\n{frame}"));
    }
    assert_eq!(sclient.request("UNSUBSCRIBE s"), reference);

    drop(standby);
    let _ = std::fs::remove_dir_all(&sroot);
    let _ = std::fs::remove_dir_all(&proot);
}

#[test]
fn operator_requested_promotion_flag_is_served_by_the_accept_loop() {
    // The CLI's SIGUSR1 relay calls `request_promotion`; the accept loop
    // must pick the flag up without any client connected.
    let sroot = temp_dir("sig-standby");
    let standby = Rig::spawn(standby_config(&sroot));
    assert!(standby.server.is_standby());
    standby.server.request_promotion();
    wait_until("flag-driven promotion", || !standby.server.is_standby());
    let mut client = Client::connect(&standby.addr);
    assert_eq!(
        client.request("OPEN q name:str,day:int,price:float"),
        "OK opened q rows=0"
    );
    drop(standby);
    let _ = std::fs::remove_dir_all(&sroot);
}
