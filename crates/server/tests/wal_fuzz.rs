//! Adversarial WAL-recovery fuzzing, in the spirit of the checkpoint
//! codec's fuzz suite: whatever a crash, a torn write or a bad disk
//! leaves in a channel WAL, the scan must never panic, must replay the
//! longest valid prefix of records, and must report what it dropped.

use sqlts_server::wal::{scan_wal, segment_path, ChannelWal, FsyncPolicy, WalError};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-wal-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A healthy WAL with a handful of frames of varying widths.
fn build_wal(name: &str) -> (PathBuf, Vec<u8>, Vec<(u64, String)>) {
    let path = temp_path(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(segment_path(&path, 0));
    let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
    let mut frames = Vec::new();
    let mut ordinal = 0u64;
    for f in 0..6u64 {
        let nrows = (f % 3) + 1;
        let payload = (0..nrows)
            .map(|r| format!("SYM{f},{},{}.5", ordinal + r, 100 + f))
            .collect::<Vec<_>>()
            .join("\n");
        wal.append(&payload, nrows as u32).unwrap();
        frames.push((ordinal, payload));
        ordinal += nrows;
    }
    // Everything fits in the first segment: that file is the fuzz target.
    let bytes = std::fs::read(segment_path(&path, 0)).unwrap();
    (path, bytes, frames)
}

/// The scanned prefix must be an exact prefix of the originally appended
/// frames — never reordered, never partially decoded.
fn assert_is_prefix(scanned: &[sqlts_server::wal::WalFrame], originals: &[(u64, String)]) {
    assert!(scanned.len() <= originals.len());
    for (got, want) in scanned.iter().zip(originals) {
        assert_eq!(got.start, want.0);
        assert_eq!(got.payload, want.1);
    }
}

#[test]
fn truncation_at_every_byte_boundary_recovers_the_valid_prefix() {
    let (path, bytes, frames) = build_wal("truncate.wal");
    for cut in 0..=bytes.len() {
        std::fs::write(segment_path(&path, 0), &bytes[..cut]).unwrap();
        match scan_wal(&path) {
            Ok(scan) => {
                assert_is_prefix(&scan.frames, &frames);
                assert_eq!(
                    scan.valid_len + scan.dropped_bytes,
                    cut as u64,
                    "cut at {cut}: every byte is either valid or reported dropped"
                );
                if scan.dropped_bytes > 0 {
                    assert!(
                        scan.corruption.is_some(),
                        "cut at {cut} dropped bytes silently"
                    );
                }
                // Recovery must also *repair*: opening truncates the torn
                // tail so the next append yields a clean log.
                let (mut wal, _) = ChannelWal::open(&path, FsyncPolicy::Off).unwrap();
                wal.append("TAIL,999,1.0", 1).unwrap();
                let rescan = scan_wal(&path).unwrap();
                assert!(rescan.corruption.is_none(), "cut at {cut} left a dirty log");
                assert_eq!(
                    rescan.frames.last().unwrap().payload,
                    "TAIL,999,1.0",
                    "cut at {cut}"
                );
            }
            // Cutting inside the header leaves nothing trustworthy: a
            // typed error, not a panic, and never a partial decode.
            Err(WalError::Malformed(_)) => {
                let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
                assert!(
                    cut < header_len,
                    "only header-region cuts may be malformed: {cut}"
                );
            }
            Err(WalError::Io(e)) => panic!("cut at {cut}: unexpected I/O error {e}"),
        }
    }
}

#[test]
fn single_byte_flips_never_panic_and_never_fabricate_records() {
    let (path, bytes, frames) = build_wal("bitflip.wal");
    let baseline = frames.len();
    for pos in (0..bytes.len()).step_by(3) {
        for pattern in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= pattern;
            std::fs::write(segment_path(&path, 0), &corrupt).unwrap();
            match scan_wal(&path) {
                Ok(scan) => {
                    // A flip is caught by the crc/contiguity/count checks
                    // at the record it damages; everything before it is
                    // intact and nothing bogus is invented after it.
                    assert!(scan.frames.len() <= baseline, "flip at {pos}");
                    assert_is_prefix(&scan.frames, &frames);
                    if scan.frames.len() < baseline {
                        assert!(
                            scan.corruption.is_some(),
                            "flip at {pos}^{pattern:02x} dropped records silently"
                        );
                    }
                }
                Err(WalError::Malformed(_)) => {
                    // Header-region flips invalidate the whole file.
                }
                Err(WalError::Io(e)) => panic!("flip at {pos}: unexpected I/O error {e}"),
            }
        }
    }
}

#[test]
fn trailing_garbage_is_dropped_and_reported() {
    let (path, bytes, frames) = build_wal("garbage.wal");
    for garbage in [
        b"x".to_vec(),
        vec![0u8; 19],                           // one byte short of a record header
        vec![0xFFu8; 64],                        // implausible length field
        b"sqlts-wal v1 base=0 crc=0\n".to_vec(), // a second header, mid-file
    ] {
        let mut poisoned = bytes.clone();
        poisoned.extend_from_slice(&garbage);
        std::fs::write(segment_path(&path, 0), &poisoned).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), frames.len(), "no valid record lost");
        assert_is_prefix(&scan.frames, &frames);
        assert_eq!(scan.dropped_bytes, garbage.len() as u64);
        assert!(scan.corruption.is_some());
    }
}

#[test]
fn adversarial_row_counts_are_rejected_not_trusted() {
    let (path, bytes, _) = build_wal("counts.wal");
    // Flip the nrows field of the first record (bytes 12..16 after the
    // header line) — the crc catches it; then also fix up the crc so only
    // the rows/payload consistency check can catch it.
    let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let mut corrupt = bytes.clone();
    corrupt[header_len + 12] ^= 0x7F;
    std::fs::write(segment_path(&path, 0), &corrupt).unwrap();
    let scan = scan_wal(&path).unwrap();
    assert!(scan.frames.is_empty(), "crc must catch the tampered count");
    assert!(scan.corruption.is_some());
}
