//! The per-channel write-ahead log behind `--data-dir`.
//!
//! Every accepted `FEED` frame is appended here *before* it fans out to
//! subscribers, so a crash can lose at most work that was never
//! acknowledged.  The format is deliberately dumb — one file per
//! channel, a checksummed text header, then length-prefixed records:
//!
//! ```text
//! file   := "sqlts-wal v1 base=<N> crc=<8 hex>\n" record*
//! record := start:u64le len:u32le nrows:u32le crc:u32le payload[len]
//! ```
//!
//! `base` is the channel row ordinal of the first record (rows below it
//! were truncated away once every subscription's snapshot had passed
//! them — the low-water mark).  Each record carries the ordinal of its
//! first row, its payload byte length, its row count, and a CRC-32 over
//! header fields and payload together.  Records must be contiguous
//! (`start` equals the previous record's end), so any torn tail,
//! flipped byte, or appended garbage is caught at the first record it
//! damages: the scan keeps the longest valid prefix, reports what it
//! dropped, and [`ChannelWal::open`] truncates the file back to that
//! prefix so subsequent appends produce a clean log again.
//!
//! Fsync policy is the standard durability dial: `Every` syncs each
//! append (survives power loss), `Batch` syncs every
//! [`BATCH_SYNC_EVERY`] appends and at snapshots (bounded loss window),
//! `Off` leaves flushing to the OS (still survives a process crash —
//! the page cache belongs to the kernel, not the process).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When to fsync the WAL file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended frame (survives power loss).
    #[default]
    Every,
    /// fsync every [`BATCH_SYNC_EVERY`] frames and at every snapshot.
    Batch,
    /// Never fsync; the OS flushes when it pleases.  Still crash-safe
    /// against a killed *process* — only the machine dying can lose
    /// acknowledged frames.
    Off,
}

/// How many appends a `Batch` policy lets pass between fsyncs.
pub const BATCH_SYNC_EVERY: u32 = 16;

impl std::str::FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "every" => Ok(FsyncPolicy::Every),
            "batch" => Ok(FsyncPolicy::Batch),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!(
                "unknown fsync policy '{other}' (want every|batch|off)"
            )),
        }
    }
}

/// A WAL failure: real I/O, or a file that is not a WAL at all.  Record
/// -level corruption is *not* an error — the scan tolerates it by
/// keeping the longest valid prefix.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file header is not a valid `sqlts-wal v1` header: nothing in
    /// the file can be trusted (not even the base ordinal).
    Malformed(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::Malformed(why) => write!(f, "malformed wal: {why}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

// CRC-32 (IEEE 802.3), table built at compile time — zero dependencies.
const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

fn crc_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 of `bytes` (IEEE, the zlib/`cksum -o 3` polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc_update(0xFFFF_FFFF, bytes)
}

const RECORD_HEADER_LEN: usize = 20;
/// Anything above this is a corrupt length field, not a real frame — the
/// server's own frame limit is far below it.
const MAX_RECORD_PAYLOAD: u32 = 1 << 28;

fn header_line(base: u64) -> String {
    let body = format!("base={base}");
    format!("sqlts-wal v1 {body} crc={:08x}\n", crc32(body.as_bytes()))
}

fn parse_header(bytes: &[u8]) -> Result<(u64, usize), WalError> {
    let nl = bytes
        .iter()
        .take(128)
        .position(|&b| b == b'\n')
        .ok_or_else(|| WalError::Malformed("missing header line".into()))?;
    let line = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| WalError::Malformed("header is not UTF-8".into()))?;
    let rest = line
        .strip_prefix("sqlts-wal v1 ")
        .ok_or_else(|| WalError::Malformed(format!("bad magic in header '{line}'")))?;
    let (body, crc_part) = rest
        .rsplit_once(' ')
        .ok_or_else(|| WalError::Malformed("header missing crc field".into()))?;
    let crc: u32 = crc_part
        .strip_prefix("crc=")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| WalError::Malformed("unparsable header crc".into()))?;
    if crc != crc32(body.as_bytes()) {
        return Err(WalError::Malformed("header crc mismatch".into()));
    }
    let base: u64 = body
        .strip_prefix("base=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| WalError::Malformed("unparsable header base".into()))?;
    Ok((base, nl + 1))
}

/// One validated WAL record: `nrows` CSV rows starting at channel row
/// ordinal `start`, stored as the newline-joined row lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalFrame {
    /// Channel row ordinal of the first row in this frame.
    pub start: u64,
    /// Rows in the payload.
    pub nrows: u32,
    /// The newline-joined CSV row lines exactly as fed.
    pub payload: String,
}

impl WalFrame {
    /// Ordinal one past this frame's last row.
    pub fn end(&self) -> u64 {
        self.start + u64::from(self.nrows)
    }
}

/// The result of scanning a WAL file tolerantly.
#[derive(Debug)]
pub struct WalScan {
    /// The base ordinal from the header.
    pub base: u64,
    /// Every record in the longest valid prefix, in order.
    pub frames: Vec<WalFrame>,
    /// Row ordinal one past the last valid record (== `base` when empty).
    pub rows_total: u64,
    /// Byte length of the valid prefix (header + whole records).
    pub valid_len: u64,
    /// Bytes after the valid prefix that the scan discarded.
    pub dropped_bytes: u64,
    /// Why the scan stopped early, when it did.
    pub corruption: Option<String>,
}

fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let (base, header_len) = parse_header(bytes)?;
    let mut frames = Vec::new();
    let mut offset = header_len;
    let mut expected = base;
    let mut corruption = None;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < RECORD_HEADER_LEN {
            corruption = Some(format!("torn record header at byte {offset}"));
            break;
        }
        let start = u64::from_le_bytes(remaining[0..8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(remaining[8..12].try_into().expect("4-byte slice"));
        let nrows = u32::from_le_bytes(remaining[12..16].try_into().expect("4-byte slice"));
        let crc = u32::from_le_bytes(remaining[16..20].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_PAYLOAD {
            corruption = Some(format!("implausible record length {len} at byte {offset}"));
            break;
        }
        let total = RECORD_HEADER_LEN + len as usize;
        if remaining.len() < total {
            corruption = Some(format!("torn record payload at byte {offset}"));
            break;
        }
        let payload = &remaining[RECORD_HEADER_LEN..total];
        let mut state = crc_update(0xFFFF_FFFF, &remaining[0..16]);
        state = crc_update(state, payload);
        if !state != crc {
            corruption = Some(format!("record crc mismatch at byte {offset}"));
            break;
        }
        if start != expected {
            corruption = Some(format!(
                "non-contiguous record at byte {offset}: start {start}, expected {expected}"
            ));
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            corruption = Some(format!("non-UTF-8 record payload at byte {offset}"));
            break;
        };
        if nrows == 0 || text.lines().count() != nrows as usize {
            corruption = Some(format!("row-count mismatch in record at byte {offset}"));
            break;
        }
        frames.push(WalFrame {
            start,
            nrows,
            payload: text.to_string(),
        });
        expected += u64::from(nrows);
        offset += total;
    }
    Ok(WalScan {
        base,
        rows_total: expected,
        frames,
        valid_len: offset as u64,
        dropped_bytes: (bytes.len() - offset) as u64,
        corruption,
    })
}

/// Scan a WAL file tolerantly: return the longest valid record prefix
/// plus a report of anything dropped.  Only a missing/unreadable file or
/// an untrustworthy *header* is an error.
pub fn scan_wal(path: &Path) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    scan_bytes(&bytes)
}

/// An open, append-ready WAL for one channel.
#[derive(Debug)]
pub struct ChannelWal {
    path: PathBuf,
    file: File,
    base: u64,
    rows_total: u64,
    policy: FsyncPolicy,
    appends_since_sync: u32,
    /// Wall nanoseconds the most recent [`sync`](ChannelWal::sync) spent
    /// in `fsync(2)`, parked here so the server can charge fsync time to
    /// its own latency histogram separately from append time without
    /// changing any call-site signature.  Collected (and reset) by
    /// [`take_fsync_ns`](ChannelWal::take_fsync_ns).
    last_fsync_ns: u64,
}

impl ChannelWal {
    /// Create a fresh WAL starting at row ordinal 0.
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<ChannelWal, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(header_line(0).as_bytes())?;
        file.sync_all()?;
        Ok(ChannelWal {
            path: path.to_path_buf(),
            file,
            base: 0,
            rows_total: 0,
            policy,
            appends_since_sync: 0,
            last_fsync_ns: 0,
        })
    }

    /// Open an existing WAL (or create a fresh one): scan it tolerantly,
    /// truncate any torn/corrupt tail so appends continue from the last
    /// valid record, and return the surviving frames for replay.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(ChannelWal, WalScan), WalError> {
        if !path.exists() {
            let wal = ChannelWal::create(path, policy)?;
            return Ok((
                wal,
                WalScan {
                    base: 0,
                    frames: Vec::new(),
                    rows_total: 0,
                    valid_len: header_line(0).len() as u64,
                    dropped_bytes: 0,
                    corruption: None,
                },
            ));
        }
        let scan = scan_wal(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if scan.dropped_bytes > 0 {
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            ChannelWal {
                path: path.to_path_buf(),
                file,
                base: scan.base,
                rows_total: scan.rows_total,
                policy,
                appends_since_sync: 0,
                last_fsync_ns: 0,
            },
            scan,
        ))
    }

    /// Row ordinal one past the last appended row.
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// Row ordinal of the first retained record.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Append one frame of `nrows` rows (the newline-joined row lines)
    /// and apply the fsync policy.  Returns whether this append fsynced.
    ///
    /// On error nothing must be trusted past the previous record — the
    /// caller should fail the FEED without fanning out (recovery will
    /// truncate the torn tail).
    pub fn append(&mut self, payload: &str, nrows: u32) -> Result<bool, WalError> {
        #[cfg(feature = "failpoints")]
        if let Some(sqlts_relation::failpoints::Injected::InjectError) =
            sqlts_relation::failpoints::hit("wal::append", self.rows_total)
        {
            return Err(WalError::Io(io::Error::other(
                "failpoint 'wal::append' injected error",
            )));
        }
        if nrows == 0 {
            return Err(WalError::Malformed(
                "refusing to append an empty frame".into(),
            ));
        }
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&self.rows_total.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&nrows.to_le_bytes());
        let mut crc = crc_update(0xFFFF_FFFF, &record);
        crc = crc_update(crc, payload.as_bytes());
        record.extend_from_slice(&(!crc).to_le_bytes());
        record.extend_from_slice(payload.as_bytes());
        self.file.write_all(&record)?;
        self.rows_total += u64::from(nrows);
        self.appends_since_sync += 1;
        let synced = match self.policy {
            FsyncPolicy::Every => true,
            FsyncPolicy::Batch => self.appends_since_sync >= BATCH_SYNC_EVERY,
            FsyncPolicy::Off => false,
        };
        if synced {
            self.sync()?;
        }
        Ok(synced)
    }

    /// fsync the log file now, regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        #[cfg(feature = "failpoints")]
        if let Some(sqlts_relation::failpoints::Injected::InjectError) =
            sqlts_relation::failpoints::hit("wal::fsync", self.rows_total)
        {
            return Err(WalError::Io(io::Error::other(
                "failpoint 'wal::fsync' injected error",
            )));
        }
        let start = std::time::Instant::now();
        self.file.sync_all()?;
        self.last_fsync_ns = self
            .last_fsync_ns
            .saturating_add(start.elapsed().as_nanos() as u64);
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Collect (and reset) the nanoseconds spent in `fsync(2)` since the
    /// last collection — 0 when no sync ran.
    pub fn take_fsync_ns(&mut self) -> u64 {
        std::mem::take(&mut self.last_fsync_ns)
    }

    /// Drop every record that lies entirely below `low_water` (the
    /// minimum snapshot position across the channel's subscriptions) by
    /// atomically rewriting the file.  Returns whether anything changed.
    pub fn truncate_below(&mut self, low_water: u64) -> Result<bool, WalError> {
        let scan = scan_wal(&self.path)?;
        let retained: Vec<&WalFrame> = scan.frames.iter().filter(|f| f.end() > low_water).collect();
        if retained.len() == scan.frames.len() {
            return Ok(false);
        }
        let new_base = retained.first().map_or(self.rows_total, |f| f.start);
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(header_line(new_base).as_bytes())?;
            for frame in &retained {
                let mut record = Vec::with_capacity(RECORD_HEADER_LEN + frame.payload.len());
                record.extend_from_slice(&frame.start.to_le_bytes());
                record.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
                record.extend_from_slice(&frame.nrows.to_le_bytes());
                let mut crc = crc_update(0xFFFF_FFFF, &record);
                crc = crc_update(crc, frame.payload.as_bytes());
                record.extend_from_slice(&(!crc).to_le_bytes());
                record.extend_from_slice(frame.payload.as_bytes());
                out.write_all(&record)?;
            }
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.base = new_base;
        self.appends_since_sync = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-wal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value every implementation pins.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_round_trip() {
        let path = temp_wal("round.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Every).unwrap();
        assert!(wal.append("a,1\nb,2", 2).unwrap());
        assert!(wal.append("c,3", 1).unwrap());
        assert_eq!(wal.rows_total(), 3);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.base, 0);
        assert_eq!(scan.rows_total, 3);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].payload, "a,1\nb,2");
        assert_eq!(scan.frames[1].start, 2);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_wal("torn.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append("a,1", 1).unwrap();
        wal.append("b,2", 1).unwrap();
        drop(wal);
        // Tear the last record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, scan) = ChannelWal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(scan.frames.len(), 1, "torn record dropped");
        assert_eq!(scan.dropped_bytes, RECORD_HEADER_LEN as u64 + 3 - 3);
        assert!(scan.corruption.is_some());
        assert_eq!(wal.rows_total(), 1);
        // The log is clean again: appends continue from the valid prefix.
        wal.append("c,3", 1).unwrap();
        let rescan = scan_wal(&path).unwrap();
        assert!(rescan.corruption.is_none());
        assert_eq!(rescan.rows_total, 2);
        assert_eq!(rescan.frames[1].payload, "c,3");
    }

    #[test]
    fn truncate_below_drops_whole_frames_only() {
        let path = temp_wal("trunc.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append("a,1\nb,2", 2).unwrap();
        wal.append("c,3\nd,4", 2).unwrap();
        wal.append("e,5", 1).unwrap();
        // Low water 3: frame [0,2) drops, frame [2,4) straddles and stays.
        assert!(wal.truncate_below(3).unwrap());
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.base, 2);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.rows_total, 5);
        // Everything snapshotted: the log empties but remembers its end.
        assert!(wal.truncate_below(5).unwrap());
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.base, 5);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.rows_total, 5);
        // And appends keep the ordinal line unbroken.
        wal.append("f,6", 1).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames[0].start, 5);
        assert_eq!(scan.rows_total, 6);
    }

    #[test]
    fn header_corruption_is_a_typed_error() {
        let path = temp_wal("header.wal");
        ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(scan_wal(&path), Err(WalError::Malformed(_))));
        assert!(matches!(
            ChannelWal::open(&path, FsyncPolicy::Off),
            Err(WalError::Malformed(_))
        ));
    }
}
