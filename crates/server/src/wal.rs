//! The per-channel write-ahead log behind `--data-dir`.
//!
//! Every accepted `FEED` frame is appended here *before* it fans out to
//! subscribers, so a crash can lose at most work that was never
//! acknowledged.  The log is **segmented**: a channel named `q` owns a
//! family of files `q.wal.0`, `q.wal.1`, … (the path passed to
//! [`ChannelWal`] is the *prefix*; the numeric suffix is the segment
//! sequence number).  Each segment is self-describing:
//!
//! ```text
//! segment := "sqlts-wal v1 base=<N> crc=<8 hex>\n" record*
//! record  := start:u64le len:u32le nrows:u32le crc:u32le payload[len]
//! ```
//!
//! `base` is the channel row ordinal of the segment's first record, and
//! consecutive segments must be contiguous: segment *k+1*'s base equals
//! segment *k*'s last ordinal.  Each record carries the ordinal of its
//! first row, its payload byte length, its row count, and a CRC-32 over
//! header fields and payload together.  Records must be contiguous
//! within a segment too, so any torn tail, flipped byte, or appended
//! garbage is caught at the first record it damages: the scan keeps the
//! longest valid prefix *across segments*, reports what it dropped, and
//! [`ChannelWal::open`] truncates the damaged segment back to that
//! prefix and unlinks every later segment so subsequent appends produce
//! a clean log again.  A torn tail can therefore only ever be repaired
//! in the *newest* surviving segment — older segments are either kept
//! whole or unlinked whole.
//!
//! Segmentation buys two things.  Low-water-mark truncation
//! ([`ChannelWal::truncate_below`]) becomes a file unlink — it never
//! rewrites a byte.  And replication resync becomes "send the segments
//! at or above the standby's acknowledged ordinal"
//! ([`read_frames_from`] skips whole segments by their header base
//! without reading their records).
//!
//! Fsync policy is the standard durability dial: `Every` syncs each
//! append (survives power loss), `Batch` syncs every
//! [`BATCH_SYNC_EVERY`] appends and at snapshots (bounded loss window),
//! `Group` defers the sync to a group-commit window so concurrent
//! feeders share one `fsync(2)` (see [`GroupCommit`]), `Off` leaves
//! flushing to the OS (still survives a process crash — the page cache
//! belongs to the kernel, not the process).

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// When to fsync the WAL file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended frame (survives power loss).
    #[default]
    Every,
    /// fsync every [`BATCH_SYNC_EVERY`] frames and at every snapshot.
    Batch,
    /// Group commit: appends do not sync inline; concurrent FEEDs inside
    /// a `window_us` microsecond window are acknowledged together after
    /// one shared fsync (the server drives this through [`GroupCommit`]).
    /// Same power-loss guarantee as `Every` — an acknowledged FEED is on
    /// disk — at a fraction of the fsync count under concurrency.
    Group {
        /// Batch-collection window in microseconds.
        window_us: u32,
    },
    /// Never fsync; the OS flushes when it pleases.  Still crash-safe
    /// against a killed *process* — only the machine dying can lose
    /// acknowledged frames.
    Off,
}

/// How many appends a `Batch` policy lets pass between fsyncs.
pub const BATCH_SYNC_EVERY: u32 = 16;

/// Group-commit window when `--fsync group` is given without `:us`.
pub const DEFAULT_GROUP_WINDOW_US: u32 = 500;

/// Segment roll threshold when the server does not override it.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

impl std::str::FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "every" => Ok(FsyncPolicy::Every),
            "batch" => Ok(FsyncPolicy::Batch),
            "off" => Ok(FsyncPolicy::Off),
            "group" => Ok(FsyncPolicy::Group {
                window_us: DEFAULT_GROUP_WINDOW_US,
            }),
            other => {
                if let Some(us) = other.strip_prefix("group:") {
                    let window_us: u32 = us
                        .parse()
                        .map_err(|_| format!("bad group window '{us}' (want microseconds)"))?;
                    return Ok(FsyncPolicy::Group { window_us });
                }
                Err(format!(
                    "unknown fsync policy '{other}' (want every|batch|group[:us]|off)"
                ))
            }
        }
    }
}

/// A WAL failure: real I/O, or a file that is not a WAL at all.  Record
/// -level corruption is *not* an error — the scan tolerates it by
/// keeping the longest valid prefix.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The first segment's header is not a valid `sqlts-wal v1` header:
    /// nothing in the log can be trusted (not even the base ordinal).
    Malformed(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::Malformed(why) => write!(f, "malformed wal: {why}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

// CRC-32 (IEEE 802.3), table built at compile time — zero dependencies.
const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

fn crc_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 of `bytes` (IEEE, the zlib/`cksum -o 3` polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc_update(0xFFFF_FFFF, bytes)
}

const RECORD_HEADER_LEN: usize = 20;
/// Anything above this is a corrupt length field, not a real frame — the
/// server's own frame limit is far below it.
const MAX_RECORD_PAYLOAD: u32 = 1 << 28;

fn header_line(base: u64) -> String {
    let body = format!("base={base}");
    format!("sqlts-wal v1 {body} crc={:08x}\n", crc32(body.as_bytes()))
}

fn parse_header(bytes: &[u8]) -> Result<(u64, usize), WalError> {
    let nl = bytes
        .iter()
        .take(128)
        .position(|&b| b == b'\n')
        .ok_or_else(|| WalError::Malformed("missing header line".into()))?;
    let line = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| WalError::Malformed("header is not UTF-8".into()))?;
    let rest = line
        .strip_prefix("sqlts-wal v1 ")
        .ok_or_else(|| WalError::Malformed(format!("bad magic in header '{line}'")))?;
    let (body, crc_part) = rest
        .rsplit_once(' ')
        .ok_or_else(|| WalError::Malformed("header missing crc field".into()))?;
    let crc: u32 = crc_part
        .strip_prefix("crc=")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| WalError::Malformed("unparsable header crc".into()))?;
    if crc != crc32(body.as_bytes()) {
        return Err(WalError::Malformed("header crc mismatch".into()));
    }
    let base: u64 = body
        .strip_prefix("base=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| WalError::Malformed("unparsable header base".into()))?;
    Ok((base, nl + 1))
}

/// The path of segment `seq` of the WAL at `prefix` (`q.wal` → `q.wal.3`).
pub fn segment_path(prefix: &Path, seq: u64) -> PathBuf {
    let mut name = prefix.file_name().map_or_else(
        || std::ffi::OsString::from("wal"),
        std::ffi::OsString::from,
    );
    name.push(format!(".{seq}"));
    prefix.with_file_name(name)
}

/// Every on-disk segment of the WAL at `prefix`, sorted by sequence
/// number.  Empty when no segment file exists yet.
fn list_segments(prefix: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let parent = prefix.parent().filter(|p| !p.as_os_str().is_empty());
    let dir = parent.unwrap_or_else(|| Path::new("."));
    let Some(stem) = prefix.file_name().and_then(|n| n.to_str()) else {
        return Ok(Vec::new());
    };
    let mut segs = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(suffix) = name
                    .strip_prefix(stem)
                    .and_then(|rest| rest.strip_prefix('.'))
                else {
                    continue;
                };
                if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(seq) = suffix.parse::<u64>() {
                        segs.push((seq, entry.path()));
                    }
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    segs.sort_by_key(|(seq, _)| *seq);
    Ok(segs)
}

/// One validated WAL record: `nrows` CSV rows starting at channel row
/// ordinal `start`, stored as the newline-joined row lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalFrame {
    /// Channel row ordinal of the first row in this frame.
    pub start: u64,
    /// Rows in the payload.
    pub nrows: u32,
    /// The newline-joined CSV row lines exactly as fed.
    pub payload: String,
}

impl WalFrame {
    /// Ordinal one past this frame's last row.
    pub fn end(&self) -> u64 {
        self.start + u64::from(self.nrows)
    }
}

/// One retained segment, as reported by [`scan_wal`].
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    /// Segment sequence number (the numeric file suffix).
    pub seq: u64,
    /// Row ordinal of the segment's first record.
    pub base: u64,
    /// Row ordinal one past the segment's last *valid* record.
    pub rows_end: u64,
    /// The segment file.
    pub path: PathBuf,
}

/// The result of scanning a segmented WAL tolerantly.
#[derive(Debug)]
pub struct WalScan {
    /// The base ordinal of the oldest retained segment.
    pub base: u64,
    /// Every record in the longest valid prefix, in order, across all
    /// retained segments.
    pub frames: Vec<WalFrame>,
    /// Row ordinal one past the last valid record (== `base` when empty).
    pub rows_total: u64,
    /// Total byte length of the valid prefix (headers + whole records,
    /// summed over retained segments).
    pub valid_len: u64,
    /// Bytes after the valid prefix that the scan discarded (torn tails
    /// plus whole later segments dropped after a mid-log break).
    pub dropped_bytes: u64,
    /// Why the scan stopped early, when it did.
    pub corruption: Option<String>,
    /// The retained segments, oldest first.  Empty only for a legacy
    /// (pre-segmentation) single-file log.
    pub segments: Vec<SegmentInfo>,
}

fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let (base, header_len) = parse_header(bytes)?;
    let mut frames = Vec::new();
    let mut offset = header_len;
    let mut expected = base;
    let mut corruption = None;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < RECORD_HEADER_LEN {
            corruption = Some(format!("torn record header at byte {offset}"));
            break;
        }
        let start = u64::from_le_bytes(remaining[0..8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(remaining[8..12].try_into().expect("4-byte slice"));
        let nrows = u32::from_le_bytes(remaining[12..16].try_into().expect("4-byte slice"));
        let crc = u32::from_le_bytes(remaining[16..20].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_PAYLOAD {
            corruption = Some(format!("implausible record length {len} at byte {offset}"));
            break;
        }
        let total = RECORD_HEADER_LEN + len as usize;
        if remaining.len() < total {
            corruption = Some(format!("torn record payload at byte {offset}"));
            break;
        }
        let payload = &remaining[RECORD_HEADER_LEN..total];
        let mut state = crc_update(0xFFFF_FFFF, &remaining[0..16]);
        state = crc_update(state, payload);
        if !state != crc {
            corruption = Some(format!("record crc mismatch at byte {offset}"));
            break;
        }
        if start != expected {
            corruption = Some(format!(
                "non-contiguous record at byte {offset}: start {start}, expected {expected}"
            ));
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            corruption = Some(format!("non-UTF-8 record payload at byte {offset}"));
            break;
        };
        if nrows == 0 || text.lines().count() != nrows as usize {
            corruption = Some(format!("row-count mismatch in record at byte {offset}"));
            break;
        }
        frames.push(WalFrame {
            start,
            nrows,
            payload: text.to_string(),
        });
        expected += u64::from(nrows);
        offset += total;
    }
    Ok(WalScan {
        base,
        rows_total: expected,
        frames,
        valid_len: offset as u64,
        dropped_bytes: (bytes.len() - offset) as u64,
        corruption,
        segments: Vec::new(),
    })
}

/// Scan the segmented WAL at `prefix` tolerantly: return the longest
/// valid record prefix across segments plus a report of anything
/// dropped.  Corruption inside a segment keeps that segment's valid
/// prefix and drops every later segment (they can no longer be
/// contiguous); a torn tail is therefore only ever *repairable* in the
/// newest surviving segment.  Only a missing log or an untrustworthy
/// header on the *first* segment is an error.
///
/// A legacy pre-segmentation log (a bare file at `prefix` itself, no
/// numbered segments) is scanned as a single segment.
pub fn scan_wal(prefix: &Path) -> Result<WalScan, WalError> {
    let segs = list_segments(prefix)?;
    if segs.is_empty() {
        // Legacy single-file layout, or nothing at all.
        let mut bytes = Vec::new();
        File::open(prefix)?.read_to_end(&mut bytes)?;
        return scan_bytes(&bytes);
    }
    let mut merged: Option<WalScan> = None;
    let mut broke_at: Option<usize> = None;
    for (idx, (seq, path)) in segs.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let seg_scan = match scan_bytes(&bytes) {
            Ok(s) => s,
            Err(WalError::Io(e)) => return Err(WalError::Io(e)),
            Err(WalError::Malformed(why)) => {
                if merged.is_none() {
                    // Nothing valid precedes it: the whole log is
                    // untrustworthy.
                    return Err(WalError::Malformed(why));
                }
                let out = merged.as_mut().expect("checked above");
                out.dropped_bytes += bytes.len() as u64;
                out.corruption = Some(format!("segment {seq} header: {why}"));
                broke_at = Some(idx);
                break;
            }
        };
        match merged.as_mut() {
            None => {
                let mut out = seg_scan;
                out.segments.push(SegmentInfo {
                    seq: *seq,
                    base: out.base,
                    rows_end: out.rows_total,
                    path: path.clone(),
                });
                let broken = out.corruption.is_some();
                merged = Some(out);
                if broken {
                    broke_at = Some(idx);
                    break;
                }
            }
            Some(out) => {
                if seg_scan.base != out.rows_total {
                    out.dropped_bytes += bytes.len() as u64;
                    out.corruption = Some(format!(
                        "segment {seq} base {} does not continue from {}",
                        seg_scan.base, out.rows_total
                    ));
                    broke_at = Some(idx);
                    break;
                }
                out.frames.extend(seg_scan.frames);
                out.rows_total = seg_scan.rows_total;
                out.valid_len += seg_scan.valid_len;
                out.dropped_bytes += seg_scan.dropped_bytes;
                out.segments.push(SegmentInfo {
                    seq: *seq,
                    base: seg_scan.base,
                    rows_end: seg_scan.rows_total,
                    path: path.clone(),
                });
                if seg_scan.corruption.is_some() {
                    out.corruption = seg_scan.corruption;
                    broke_at = Some(idx);
                    break;
                }
            }
        }
    }
    let mut out = merged.expect("at least one segment scanned");
    if let Some(broke) = broke_at {
        // Everything after the break can no longer be contiguous: count
        // the later segments as dropped whole.
        for (_, path) in &segs[broke + 1..] {
            out.dropped_bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        }
    }
    Ok(out)
}

/// Read every frame whose rows extend past `from` (a row ordinal),
/// skipping whole segments below it by header base alone — the
/// replication resync path ("send segments ≥ the standby's acked
/// ordinal") never deserializes records the standby already has, except
/// in the one segment that straddles the ordinal.
pub fn read_frames_from(prefix: &Path, from: u64) -> Result<Vec<WalFrame>, WalError> {
    let segs = list_segments(prefix)?;
    if segs.is_empty() {
        let scan = scan_wal(prefix)?;
        return Ok(scan.frames.into_iter().filter(|f| f.end() > from).collect());
    }
    // Header bases, read without touching record bytes.
    let mut bases = Vec::with_capacity(segs.len());
    for (_, path) in &segs {
        let mut head = [0u8; 128];
        let mut file = File::open(path)?;
        let mut filled = 0;
        while filled < head.len() {
            let n = file.read(&mut head[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        let (base, _) = parse_header(&head[..filled])?;
        bases.push(base);
    }
    // The last segment whose base is ≤ `from` may straddle the ordinal;
    // everything before it is entirely below and skipped unread.
    let start_idx = bases
        .iter()
        .rposition(|&b| b <= from)
        .unwrap_or(0);
    let mut frames = Vec::new();
    for (idx, (_, path)) in segs.iter().enumerate().skip(start_idx) {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let seg_scan = scan_bytes(&bytes)?;
        if idx > start_idx && frames.last().map(WalFrame::end) != Some(seg_scan.base)
            && !frames.is_empty()
        {
            break; // non-contiguous tail: stop at the longest valid prefix
        }
        frames.extend(seg_scan.frames.into_iter().filter(|f| f.end() > from));
        if seg_scan.corruption.is_some() {
            break;
        }
    }
    Ok(frames)
}

/// An open, append-ready segmented WAL for one channel.  `prefix` is the
/// path *stem*; segment files live at `<prefix>.<seq>`.
#[derive(Debug)]
pub struct ChannelWal {
    prefix: PathBuf,
    /// The active (highest-sequence) segment, opened for append.
    file: File,
    active_seq: u64,
    active_base: u64,
    active_bytes: u64,
    /// Older retained segments as `(seq, base)`, oldest first.  A closed
    /// segment's end ordinal is the next entry's base (or the active
    /// segment's base for the last one).
    closed: Vec<(u64, u64)>,
    base: u64,
    rows_total: u64,
    policy: FsyncPolicy,
    segment_bytes: u64,
    appends_since_sync: u32,
    /// Wall nanoseconds the most recent [`sync`](ChannelWal::sync) spent
    /// in `fsync(2)`, parked here so the server can charge fsync time to
    /// its own latency histogram separately from append time without
    /// changing any call-site signature.  Collected (and reset) by
    /// [`take_fsync_ns`](ChannelWal::take_fsync_ns).
    last_fsync_ns: u64,
}

fn sync_dir_of(path: &Path) -> io::Result<()> {
    // Best-effort: persist the directory entry (some filesystems refuse
    // to fsync directories).
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

impl ChannelWal {
    /// Create a fresh WAL starting at row ordinal 0 (segment `.0`).
    pub fn create(prefix: &Path, policy: FsyncPolicy) -> Result<ChannelWal, WalError> {
        let seg0 = segment_path(prefix, 0);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&seg0)?;
        let header = header_line(0);
        file.write_all(header.as_bytes())?;
        file.sync_all()?;
        sync_dir_of(&seg0)?;
        Ok(ChannelWal {
            prefix: prefix.to_path_buf(),
            file,
            active_seq: 0,
            active_base: 0,
            active_bytes: header.len() as u64,
            closed: Vec::new(),
            base: 0,
            rows_total: 0,
            policy,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            appends_since_sync: 0,
            last_fsync_ns: 0,
        })
    }

    /// Open an existing WAL (or create a fresh one): scan it tolerantly,
    /// repair any torn/corrupt tail — truncating the damaged segment to
    /// its valid prefix and unlinking every later segment — so appends
    /// continue from the last valid record, and return the surviving
    /// frames for replay.
    ///
    /// A legacy pre-segmentation log (a bare file at `prefix`) is
    /// migrated in place by renaming it to segment `.0`.
    pub fn open(prefix: &Path, policy: FsyncPolicy) -> Result<(ChannelWal, WalScan), WalError> {
        if list_segments(prefix)?.is_empty() {
            if prefix.exists() {
                // Legacy single-file layout: adopt it as segment 0.
                fs::rename(prefix, segment_path(prefix, 0))?;
                sync_dir_of(prefix)?;
            } else {
                let wal = ChannelWal::create(prefix, policy)?;
                return Ok((
                    wal,
                    WalScan {
                        base: 0,
                        frames: Vec::new(),
                        rows_total: 0,
                        valid_len: header_line(0).len() as u64,
                        dropped_bytes: 0,
                        corruption: None,
                        segments: vec![SegmentInfo {
                            seq: 0,
                            base: 0,
                            rows_end: 0,
                            path: segment_path(prefix, 0),
                        }],
                    },
                ));
            }
        }
        let scan = scan_wal(prefix)?;
        let retained = &scan.segments;
        let last = retained.last().expect("scan keeps at least one segment");
        // Unlink segments past the longest valid prefix (they can no
        // longer be contiguous with it).
        for (seq, path) in list_segments(prefix)? {
            if seq > last.seq {
                fs::remove_file(&path)?;
            }
        }
        // Truncate the newest surviving segment back to its valid bytes.
        let mut file = OpenOptions::new().read(true).write(true).open(&last.path)?;
        let earlier_valid: u64 = retained[..retained.len() - 1]
            .iter()
            .map(|s| fs::metadata(&s.path).map(|m| m.len()).unwrap_or(0))
            .sum();
        let last_valid = scan.valid_len - earlier_valid;
        if file.metadata()?.len() != last_valid {
            file.set_len(last_valid)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let active_bytes = last_valid;
        Ok((
            ChannelWal {
                prefix: prefix.to_path_buf(),
                file,
                active_seq: last.seq,
                active_base: last.base,
                active_bytes,
                closed: retained[..retained.len() - 1]
                    .iter()
                    .map(|s| (s.seq, s.base))
                    .collect(),
                base: scan.base,
                rows_total: scan.rows_total,
                policy,
                segment_bytes: DEFAULT_SEGMENT_BYTES,
                appends_since_sync: 0,
                last_fsync_ns: 0,
            },
            scan,
        ))
    }

    /// Override the segment roll threshold (bytes of records per segment
    /// before a new one is started).  Values below 1 are clamped to 1.
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes.max(1);
    }

    /// Row ordinal one past the last appended row.
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// Row ordinal of the first retained record.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The path stem this WAL's segments live under.
    pub fn prefix(&self) -> &Path {
        &self.prefix
    }

    /// Sequence number of the active (append) segment.
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    /// Close the active segment and start `<prefix>.<seq+1>`.  The old
    /// segment is fsynced first (except under `Off`) so the cross-segment
    /// contiguity invariant survives power loss.
    fn roll(&mut self) -> Result<(), WalError> {
        if self.policy != FsyncPolicy::Off {
            self.sync()?;
        }
        let next_seq = self.active_seq + 1;
        let next_path = segment_path(&self.prefix, next_seq);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&next_path)?;
        let header = header_line(self.rows_total);
        file.write_all(header.as_bytes())?;
        if self.policy != FsyncPolicy::Off {
            file.sync_all()?;
        }
        sync_dir_of(&next_path)?;
        self.closed.push((self.active_seq, self.active_base));
        self.file = file;
        self.active_seq = next_seq;
        self.active_base = self.rows_total;
        self.active_bytes = header.len() as u64;
        Ok(())
    }

    /// Append one frame of `nrows` rows (the newline-joined row lines)
    /// and apply the fsync policy.  Returns whether this append fsynced
    /// (`Group` appends return `false`; the group-commit leader syncs
    /// later via [`sync`](ChannelWal::sync)).
    ///
    /// On error nothing must be trusted past the previous record — the
    /// caller should fail the FEED without fanning out (recovery will
    /// truncate the torn tail).
    pub fn append(&mut self, payload: &str, nrows: u32) -> Result<bool, WalError> {
        #[cfg(feature = "failpoints")]
        if let Some(sqlts_relation::failpoints::Injected::InjectError) =
            sqlts_relation::failpoints::hit("wal::append", self.rows_total)
        {
            return Err(WalError::Io(io::Error::other(
                "failpoint 'wal::append' injected error",
            )));
        }
        if nrows == 0 {
            return Err(WalError::Malformed(
                "refusing to append an empty frame".into(),
            ));
        }
        if self.active_bytes >= self.segment_bytes && self.rows_total > self.active_base {
            self.roll()?;
        }
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&self.rows_total.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&nrows.to_le_bytes());
        let mut crc = crc_update(0xFFFF_FFFF, &record);
        crc = crc_update(crc, payload.as_bytes());
        record.extend_from_slice(&(!crc).to_le_bytes());
        record.extend_from_slice(payload.as_bytes());
        self.file.write_all(&record)?;
        self.rows_total += u64::from(nrows);
        self.active_bytes += record.len() as u64;
        self.appends_since_sync += 1;
        let synced = match self.policy {
            FsyncPolicy::Every => true,
            FsyncPolicy::Batch => self.appends_since_sync >= BATCH_SYNC_EVERY,
            FsyncPolicy::Group { .. } | FsyncPolicy::Off => false,
        };
        if synced {
            self.sync()?;
        }
        Ok(synced)
    }

    /// fsync the active segment now, regardless of policy.  (Closed
    /// segments were synced when they were rolled.)
    pub fn sync(&mut self) -> Result<(), WalError> {
        #[cfg(feature = "failpoints")]
        if let Some(sqlts_relation::failpoints::Injected::InjectError) =
            sqlts_relation::failpoints::hit("wal::fsync", self.rows_total)
        {
            return Err(WalError::Io(io::Error::other(
                "failpoint 'wal::fsync' injected error",
            )));
        }
        let start = std::time::Instant::now();
        self.file.sync_all()?;
        self.last_fsync_ns = self
            .last_fsync_ns
            .saturating_add(start.elapsed().as_nanos() as u64);
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Collect (and reset) the nanoseconds spent in `fsync(2)` since the
    /// last collection — 0 when no sync ran.
    pub fn take_fsync_ns(&mut self) -> u64 {
        std::mem::take(&mut self.last_fsync_ns)
    }

    /// Drop every *closed segment* that lies entirely below `low_water`
    /// (the minimum snapshot position across the channel's
    /// subscriptions).  Truncation is a whole-file unlink — it never
    /// rewrites a byte, and it never touches the active segment, so rows
    /// above the low-water mark (and the channel's end ordinal) are
    /// always preserved.  Returns whether anything was unlinked.
    pub fn truncate_below(&mut self, low_water: u64) -> Result<bool, WalError> {
        let mut unlinked = 0usize;
        while !self.closed.is_empty() {
            let end = if self.closed.len() > 1 {
                self.closed[1].1
            } else {
                self.active_base
            };
            if end > low_water {
                break;
            }
            let (seq, _) = self.closed[0];
            fs::remove_file(segment_path(&self.prefix, seq))?;
            self.closed.remove(0);
            unlinked += 1;
        }
        if unlinked == 0 {
            return Ok(false);
        }
        self.base = self.closed.first().map_or(self.active_base, |&(_, b)| b);
        sync_dir_of(&self.prefix)?;
        Ok(true)
    }
}

/// Per-channel group-commit coordinator for `--fsync group[:us]`.
///
/// Feeders append under the channel persist lock *without* syncing, then
/// call [`wait_durable`](GroupCommit::wait_durable) after releasing it.
/// The first feeder to arrive becomes the batch **leader**: it sleeps
/// for the window (letting concurrent FEEDs pile their appends into the
/// same segment), performs one fsync through the supplied closure, and
/// publishes the new durable watermark.  Followers whose rows fall under
/// the watermark return without ever touching the file — many FEED acks,
/// one `fsync(2)`.
///
/// A failed sync fails **every** feeder in the batch (their rows are not
/// durable), delivered through a failure generation counter so no waiter
/// can miss it.
#[derive(Debug, Default)]
pub struct GroupCommit {
    state: Mutex<GroupState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct GroupState {
    /// Rows below this ordinal are known fsynced.
    synced_rows: u64,
    /// A leader is currently collecting/syncing a batch.
    leader: bool,
    /// Incremented on every failed sync; waiters compare generations.
    fail_seq: u64,
    last_error: String,
}

impl GroupCommit {
    /// Block until rows below `end` are durable, electing this thread as
    /// the batch leader if none is active.  `sync_fn` must perform the
    /// fsync (re-acquiring whatever lock protects the WAL) and return
    /// the new durable watermark (the WAL's `rows_total` at sync time).
    pub fn wait_durable<F>(&self, end: u64, window: Duration, sync_fn: F) -> Result<(), String>
    where
        F: Fn() -> Result<u64, String>,
    {
        let mut st = self.state.lock().expect("group-commit lock");
        let entry_fail = st.fail_seq;
        loop {
            if st.synced_rows >= end {
                return Ok(());
            }
            if st.fail_seq != entry_fail {
                return Err(st.last_error.clone());
            }
            if st.leader {
                st = self.cv.wait(st).expect("group-commit lock");
                continue;
            }
            st.leader = true;
            drop(st);
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            let outcome = sync_fn();
            st = self.state.lock().expect("group-commit lock");
            st.leader = false;
            match outcome {
                Ok(watermark) => st.synced_rows = st.synced_rows.max(watermark),
                Err(e) => {
                    st.fail_seq += 1;
                    st.last_error = e;
                }
            }
            self.cv.notify_all();
        }
    }

    /// Record rows made durable outside the group path (snapshot-time
    /// syncs) so later waiters don't re-fsync for them.
    pub fn publish_synced(&self, watermark: u64) {
        let mut st = self.state.lock().expect("group-commit lock");
        if watermark > st.synced_rows {
            st.synced_rows = watermark;
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sqlts-wal-unit-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value every implementation pins.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_group_windows() {
        use std::str::FromStr;
        assert_eq!(
            FsyncPolicy::from_str("group").unwrap(),
            FsyncPolicy::Group {
                window_us: DEFAULT_GROUP_WINDOW_US
            }
        );
        assert_eq!(
            FsyncPolicy::from_str("group:250").unwrap(),
            FsyncPolicy::Group { window_us: 250 }
        );
        assert!(FsyncPolicy::from_str("group:abc").is_err());
    }

    #[test]
    fn append_scan_round_trip() {
        let path = temp_wal("round.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Every).unwrap();
        assert!(wal.append("a,1\nb,2", 2).unwrap());
        assert!(wal.append("c,3", 1).unwrap());
        assert_eq!(wal.rows_total(), 3);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.base, 0);
        assert_eq!(scan.rows_total, 3);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].payload, "a,1\nb,2");
        assert_eq!(scan.frames[1].start, 2);
        assert_eq!(scan.segments.len(), 1, "no roll at default segment size");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_wal("torn.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append("a,1", 1).unwrap();
        wal.append("b,2", 1).unwrap();
        drop(wal);
        // Tear the last record in half.
        let seg0 = segment_path(&path, 0);
        let bytes = std::fs::read(&seg0).unwrap();
        std::fs::write(&seg0, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, scan) = ChannelWal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(scan.frames.len(), 1, "torn record dropped");
        assert_eq!(scan.dropped_bytes, RECORD_HEADER_LEN as u64 + 3 - 3);
        assert!(scan.corruption.is_some());
        assert_eq!(wal.rows_total(), 1);
        // The log is clean again: appends continue from the valid prefix.
        wal.append("c,3", 1).unwrap();
        let rescan = scan_wal(&path).unwrap();
        assert!(rescan.corruption.is_none());
        assert_eq!(rescan.rows_total, 2);
        assert_eq!(rescan.frames[1].payload, "c,3");
    }

    #[test]
    fn appends_roll_into_new_segments() {
        let path = temp_wal("roll.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.set_segment_bytes(1); // roll before every append after the first
        wal.append("a,1\nb,2", 2).unwrap();
        wal.append("c,3\nd,4", 2).unwrap();
        wal.append("e,5\nf,6", 2).unwrap();
        assert_eq!(wal.active_seq(), 2);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.corruption.is_none());
        assert_eq!(scan.segments.len(), 3);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.rows_total, 6);
        assert_eq!(scan.segments[1].base, 2);
        assert_eq!(scan.segments[2].base, 4);
        // Reopen: same picture, appends continue in the active segment.
        drop(wal);
        let (mut wal, scan) = ChannelWal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(scan.rows_total, 6);
        assert_eq!(wal.active_seq(), 2);
        wal.append("g,7", 1).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.rows_total, 7);
        assert_eq!(scan.segments.len(), 3, "append reused the active segment");
    }

    #[test]
    fn truncation_unlinks_whole_segments_and_never_rewrites() {
        let path = temp_wal("trunc.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.set_segment_bytes(1);
        wal.append("a,1\nb,2", 2).unwrap(); // segment 0: rows [0,2)
        wal.append("c,3\nd,4", 2).unwrap(); // segment 1: rows [2,4)
        wal.append("e,5\nf,6", 2).unwrap(); // segment 2 (active): rows [4,6)
        let seg1_before = std::fs::read(segment_path(&path, 1)).unwrap();
        let seg2_before = std::fs::read(segment_path(&path, 2)).unwrap();
        // Low water 2: only segment 0 lies entirely below it.
        assert!(wal.truncate_below(2).unwrap());
        assert!(!segment_path(&path, 0).exists(), "segment 0 unlinked");
        assert_eq!(
            std::fs::read(segment_path(&path, 1)).unwrap(),
            seg1_before,
            "truncation must not rewrite surviving segments"
        );
        assert_eq!(wal.base(), 2);
        // Low water 3: segment 1 straddles it and must survive untouched.
        assert!(!wal.truncate_below(3).unwrap());
        assert_eq!(wal.base(), 2);
        // Low water 6: everything snapshotted; closed segments unlink but
        // the active segment stays (byte-identical) so the ordinal line
        // and end position survive.
        assert!(wal.truncate_below(6).unwrap());
        assert!(!segment_path(&path, 1).exists());
        assert_eq!(std::fs::read(segment_path(&path, 2)).unwrap(), seg2_before);
        assert_eq!(wal.base(), 4);
        assert_eq!(wal.rows_total(), 6);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.base, 4);
        assert_eq!(scan.rows_total, 6);
        // And appends keep the ordinal line unbroken.
        wal.append("g,7", 1).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.last().unwrap().start, 6);
        assert_eq!(scan.rows_total, 7);
    }

    #[test]
    fn interior_corruption_drops_all_later_segments() {
        let path = temp_wal("interior.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.set_segment_bytes(1);
        wal.append("a,1", 1).unwrap(); // segment 0
        wal.append("b,2", 1).unwrap(); // segment 1
        wal.append("c,3", 1).unwrap(); // segment 2
        drop(wal);
        // Flip a payload byte in the *middle* segment.
        let seg1 = segment_path(&path, 1);
        let mut bytes = std::fs::read(&seg1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg1, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.rows_total, 1, "valid prefix ends before segment 1's record");
        assert!(scan.corruption.is_some());
        assert_eq!(scan.segments.last().unwrap().seq, 1);
        // Open repairs: segment 1 truncated to its header, segment 2 gone.
        let (mut wal, _) = ChannelWal::open(&path, FsyncPolicy::Off).unwrap();
        assert!(!segment_path(&path, 2).exists(), "later segment unlinked");
        assert_eq!(wal.rows_total(), 1);
        wal.append("d,2", 1).unwrap();
        let rescan = scan_wal(&path).unwrap();
        assert!(rescan.corruption.is_none());
        assert_eq!(rescan.rows_total, 2);
    }

    #[test]
    fn legacy_single_file_wal_is_migrated_to_segment_zero() {
        let path = temp_wal("legacy.wal");
        // Build a pre-segmentation log: a bare file at the prefix path.
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append("a,1", 1).unwrap();
        wal.append("b,2", 1).unwrap();
        drop(wal);
        std::fs::rename(segment_path(&path, 0), &path).unwrap();
        // scan_wal reads it in place; open migrates it.
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.rows_total, 2);
        let (wal, scan) = ChannelWal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(scan.rows_total, 2);
        assert_eq!(wal.rows_total(), 2);
        assert!(!path.exists(), "bare legacy file renamed away");
        assert!(segment_path(&path, 0).exists());
    }

    #[test]
    fn read_frames_from_skips_whole_segments() {
        let path = temp_wal("resync.wal");
        let mut wal = ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        wal.set_segment_bytes(1);
        wal.append("a,1\nb,2", 2).unwrap();
        wal.append("c,3\nd,4", 2).unwrap();
        wal.append("e,5\nf,6", 2).unwrap();
        let all = read_frames_from(&path, 0).unwrap();
        assert_eq!(all.len(), 3);
        let tail = read_frames_from(&path, 4).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].start, 4);
        // An ordinal inside a frame still returns that frame whole.
        let straddle = read_frames_from(&path, 3).unwrap();
        assert_eq!(straddle.len(), 2);
        assert_eq!(straddle[0].start, 2);
        let none = read_frames_from(&path, 6).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn header_corruption_is_a_typed_error() {
        let path = temp_wal("header.wal");
        ChannelWal::create(&path, FsyncPolicy::Off).unwrap();
        let seg0 = segment_path(&path, 0);
        let mut bytes = std::fs::read(&seg0).unwrap();
        bytes[0] ^= 0x20;
        std::fs::write(&seg0, &bytes).unwrap();
        assert!(matches!(scan_wal(&path), Err(WalError::Malformed(_))));
        assert!(matches!(
            ChannelWal::open(&path, FsyncPolicy::Off),
            Err(WalError::Malformed(_))
        ));
    }

    #[test]
    fn group_commit_shares_one_fsync_across_a_batch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let gc = Arc::new(GroupCommit::default());
        let syncs = Arc::new(AtomicU64::new(0));
        let appended = Arc::new(AtomicU64::new(0));
        const FEEDERS: u64 = 8;
        let mut handles = Vec::new();
        for i in 0..FEEDERS {
            let gc = Arc::clone(&gc);
            let syncs = Arc::clone(&syncs);
            let appended = Arc::clone(&appended);
            handles.push(std::thread::spawn(move || {
                // "Append" row i, then wait for the group sync.
                let end = appended.fetch_add(1, Ordering::SeqCst) + 1;
                gc.wait_durable(end, Duration::from_millis(50), || {
                    syncs.fetch_add(1, Ordering::SeqCst);
                    Ok(appended.load(Ordering::SeqCst))
                })
                .unwrap();
                let _ = i;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = syncs.load(Ordering::SeqCst);
        assert!(
            total < FEEDERS,
            "{FEEDERS} feeders must share fsyncs, got {total}"
        );
        assert!(total >= 1);
    }

    #[test]
    fn group_commit_failure_fails_every_waiter_in_the_batch() {
        use std::sync::Arc;
        let gc = Arc::new(GroupCommit::default());
        let mut handles = Vec::new();
        for i in 1..=4u64 {
            let gc = Arc::clone(&gc);
            handles.push(std::thread::spawn(move || {
                gc.wait_durable(i, Duration::from_millis(30), || {
                    Err("disk on fire".to_string())
                })
            }));
        }
        for h in handles {
            let err = h.join().unwrap().expect_err("sync failure must propagate");
            assert!(err.contains("disk on fire"), "{err}");
        }
        // A later successful sync clears the way.
        gc.publish_synced(10);
        gc.wait_durable(5, Duration::ZERO, || Ok(10)).unwrap();
    }
}
