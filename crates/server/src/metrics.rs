//! Server-level counters and the Prometheus text exposition served at
//! `GET /metrics`.
//!
//! Three layers are spliced into one scrape:
//!
//! 1. server counters (connections, frames, protocol errors, rows fed);
//! 2. live per-subscription gauges, labeled `tenant="<sub id>"`, sampled
//!    from each worker's [`SessionStatus`](sqlts_core::SessionStatus);
//! 3. the most recent finished subscriptions' full
//!    [`ExecutionProfile`](sqlts_trace::ExecutionProfile) expositions via
//!    `to_prometheus_labeled`, with duplicate `# TYPE` lines removed so
//!    the merged document stays a valid exposition.

use sqlts_trace::ExecutionProfile;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic server counters (all `Relaxed`: scrape-grade accuracy).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// TCP connections accepted (protocol and HTTP alike).
    pub connections_total: AtomicU64,
    /// Protocol frames decoded, well-formed or not.
    pub frames_total: AtomicU64,
    /// Frames answered with `ERR` (any code).
    pub errors_total: AtomicU64,
    /// Subscriptions ever admitted (SUBSCRIBE + RESUME).
    pub subscriptions_total: AtomicU64,
    /// Input rows delivered to workers (rows × subscribers).
    pub rows_fed_total: AtomicU64,
    /// FEED frames appended to a channel WAL (`--data-dir` only).
    pub wal_appends_total: AtomicU64,
    /// fsyncs issued against channel WALs.
    pub wal_fsyncs_total: AtomicU64,
    /// WAL truncations past the snapshot low-water mark.
    pub wal_truncations_total: AtomicU64,
    /// Subscription checkpoint snapshots written to disk.
    pub snapshots_total: AtomicU64,
    /// Subscriptions respawned from snapshots at startup recovery.
    pub recovered_subscriptions_total: AtomicU64,
    finished: Mutex<Vec<(String, Box<ExecutionProfile>)>>,
    retain_profiles: usize,
}

impl ServerMetrics {
    /// A fresh registry retaining at most `retain_profiles` finished
    /// subscription profiles (oldest evicted first).
    pub fn new(retain_profiles: usize) -> ServerMetrics {
        ServerMetrics {
            retain_profiles,
            ..ServerMetrics::default()
        }
    }

    /// Bump a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Retain a finished subscription's profile for future scrapes.
    pub fn retain_profile(&self, tenant: &str, profile: Box<ExecutionProfile>) {
        if self.retain_profiles == 0 {
            return;
        }
        let Ok(mut slot) = self.finished.lock() else {
            return;
        };
        if slot.len() == self.retain_profiles {
            slot.remove(0);
        }
        slot.push((tenant.to_string(), profile));
    }

    /// Render the merged exposition.  `live` is one pre-rendered gauge
    /// block per live subscription (see [`live_gauges`]).
    pub fn render(&self, live: &[String]) -> String {
        let mut out = String::new();
        for (name, help, value) in [
            (
                "sqlts_server_connections_total",
                "TCP connections accepted",
                &self.connections_total,
            ),
            (
                "sqlts_server_frames_total",
                "protocol frames decoded",
                &self.frames_total,
            ),
            (
                "sqlts_server_errors_total",
                "frames answered with ERR",
                &self.errors_total,
            ),
            (
                "sqlts_server_subscriptions_total",
                "subscriptions admitted",
                &self.subscriptions_total,
            ),
            (
                "sqlts_server_rows_fed_total",
                "rows delivered to workers",
                &self.rows_fed_total,
            ),
            (
                "sqlts_server_wal_appends_total",
                "FEED frames appended to channel WALs",
                &self.wal_appends_total,
            ),
            (
                "sqlts_server_wal_fsyncs_total",
                "fsyncs issued against channel WALs",
                &self.wal_fsyncs_total,
            ),
            (
                "sqlts_server_wal_truncations_total",
                "WAL truncations past the snapshot low-water mark",
                &self.wal_truncations_total,
            ),
            (
                "sqlts_server_snapshots_total",
                "subscription checkpoint snapshots written",
                &self.snapshots_total,
            ),
            (
                "sqlts_server_recovered_subscriptions_total",
                "subscriptions respawned from snapshots at recovery",
                &self.recovered_subscriptions_total,
            ),
        ] {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}",
                value.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE sqlts_sub_records gauge\n");
        out.push_str("# TYPE sqlts_sub_skipped gauge\n");
        out.push_str("# TYPE sqlts_sub_quarantined gauge\n");
        out.push_str("# TYPE sqlts_sub_tripped gauge\n");
        for block in live {
            out.push_str(block);
        }
        // Finished profiles: each exposition repeats its own # TYPE
        // headers, so dedupe them across the splice.
        let mut seen_types: HashSet<String> = HashSet::new();
        if let Ok(finished) = self.finished.lock() {
            for (tenant, profile) in finished.iter() {
                for line in profile.to_prometheus_labeled(&[("tenant", tenant)]).lines() {
                    if line.starts_with("# TYPE") && !seen_types.insert(line.to_string()) {
                        continue;
                    }
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Render one live subscription's gauges (tenant-labeled, names declared
/// once by [`ServerMetrics::render`]).
pub fn live_gauges(tenant: &str, status: &sqlts_core::SessionStatus) -> String {
    let t = escape_label(tenant);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sqlts_sub_records{{tenant=\"{t}\"}} {}",
        status.records
    );
    let _ = writeln!(
        out,
        "sqlts_sub_skipped{{tenant=\"{t}\"}} {}",
        status.skipped
    );
    let _ = writeln!(
        out,
        "sqlts_sub_quarantined{{tenant=\"{t}\"}} {}",
        status.quarantined
    );
    let _ = writeln!(
        out,
        "sqlts_sub_tripped{{tenant=\"{t}\"}} {}",
        u8::from(status.trip.is_some())
    );
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_lines_are_deduped_across_finished_profiles() {
        let metrics = ServerMetrics::new(4);
        ServerMetrics::inc(&metrics.connections_total);
        let profile = ExecutionProfile::new("ops", 2);
        metrics.retain_profile("a", Box::new(profile));
        let profile = ExecutionProfile::new("ops", 2);
        metrics.retain_profile("b", Box::new(profile));
        let out = metrics.render(&[]);
        let type_matches = out
            .lines()
            .filter(|l| *l == "# TYPE sqlts_matches_total counter")
            .count();
        assert_eq!(type_matches, 1, "{out}");
        assert!(out.contains("sqlts_matches_total{tenant=\"a\"} 0"), "{out}");
        assert!(out.contains("sqlts_matches_total{tenant=\"b\"} 0"), "{out}");
        assert!(out.contains("sqlts_server_connections_total 1"), "{out}");
    }

    #[test]
    fn retention_evicts_oldest() {
        let metrics = ServerMetrics::new(1);
        metrics.retain_profile("old", Box::new(ExecutionProfile::new("ops", 1)));
        metrics.retain_profile("new", Box::new(ExecutionProfile::new("ops", 1)));
        let out = metrics.render(&[]);
        assert!(!out.contains("tenant=\"old\""));
        assert!(out.contains("tenant=\"new\""));
    }
}
