//! Server-level counters and the Prometheus text exposition served at
//! `GET /metrics`.
//!
//! Three layers are spliced into one scrape:
//!
//! 1. server counters (connections, frames, protocol errors, rows fed);
//! 2. live per-subscription gauges, labeled `tenant="<sub id>"`, sampled
//!    from each worker's [`SessionStatus`](sqlts_core::SessionStatus);
//! 3. the most recent finished subscriptions' full
//!    [`ExecutionProfile`](sqlts_trace::ExecutionProfile) expositions via
//!    `to_prometheus_labeled`, with duplicate `# TYPE` lines removed so
//!    the merged document stays a valid exposition.

use sqlts_trace::{json_escape, write_prometheus_histogram, BoundedHistogram, ExecutionProfile};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A server hot-path operation with its own latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyOp {
    /// One WAL record append (excluding any fsync it triggered).
    WalAppend,
    /// One `fsync(2)` against a channel WAL.
    Fsync,
    /// One frame decode, from first header byte to parsed payload.
    FrameDecode,
    /// One FEED frame's fan-out loop across a channel's workers.
    Fanout,
    /// One channel snapshot pass (every subscription checkpointed).
    Snapshot,
}

impl LatencyOp {
    const ALL: [LatencyOp; 5] = [
        LatencyOp::WalAppend,
        LatencyOp::Fsync,
        LatencyOp::FrameDecode,
        LatencyOp::Fanout,
        LatencyOp::Snapshot,
    ];

    /// The exposition metric name (`sqlts_server_<op>_micros`).
    pub fn metric_name(self) -> &'static str {
        match self {
            LatencyOp::WalAppend => "sqlts_server_wal_append_micros",
            LatencyOp::Fsync => "sqlts_server_fsync_micros",
            LatencyOp::FrameDecode => "sqlts_server_frame_decode_micros",
            LatencyOp::Fanout => "sqlts_server_fanout_micros",
            LatencyOp::Snapshot => "sqlts_server_snapshot_micros",
        }
    }

    /// The key used in `/status` JSON.
    pub fn json_key(self) -> &'static str {
        match self {
            LatencyOp::WalAppend => "wal_append_micros",
            LatencyOp::Fsync => "fsync_micros",
            LatencyOp::FrameDecode => "frame_decode_micros",
            LatencyOp::Fanout => "fanout_micros",
            LatencyOp::Snapshot => "snapshot_micros",
        }
    }

    fn index(self) -> usize {
        match self {
            LatencyOp::WalAppend => 0,
            LatencyOp::Fsync => 1,
            LatencyOp::FrameDecode => 2,
            LatencyOp::Fanout => 3,
            LatencyOp::Snapshot => 4,
        }
    }
}

/// Power-of-two latency histograms (microsecond buckets) for the five
/// hot-path operations, reusing the query profiles' [`BoundedHistogram`]
/// so server latencies and engine shift-distances share one exposition
/// shape.  Each record is one short uncontended mutex acquisition —
/// the recording sites already hold (or just released) the channel
/// persist lock, so this adds no new contention edge.
#[derive(Debug, Default)]
pub struct LatencyHistograms {
    hists: [Mutex<BoundedHistogram>; 5],
}

impl LatencyHistograms {
    /// Record one operation's duration (nanoseconds; bucketed in µs).
    pub fn record_ns(&self, op: LatencyOp, ns: u64) {
        if let Ok(mut h) = self.hists[op.index()].lock() {
            h.record(ns / 1_000);
        }
    }

    /// A snapshot of one operation's histogram.
    pub fn snapshot(&self, op: LatencyOp) -> BoundedHistogram {
        self.hists[op.index()]
            .lock()
            .map(|h| h.clone())
            .unwrap_or_default()
    }

    /// Append every histogram to a Prometheus exposition.
    fn render_prometheus(&self, out: &mut String) {
        for op in LatencyOp::ALL {
            let h = self.snapshot(op);
            write_prometheus_histogram(out, op.metric_name(), "", &h);
        }
    }

    /// Append `"latency":{...}` summaries (count/sum/max per op, µs) to a
    /// JSON object body.
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, op) in LatencyOp::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = self.snapshot(op);
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{}}}",
                op.json_key(),
                h.count(),
                h.sum(),
                h.max()
            );
        }
        out.push('}');
    }
}

/// Monotonic server counters (all `Relaxed`: scrape-grade accuracy).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// TCP connections accepted (protocol and HTTP alike).
    pub connections_total: AtomicU64,
    /// Protocol frames decoded, well-formed or not.
    pub frames_total: AtomicU64,
    /// Frames answered with `ERR` (any code).
    pub errors_total: AtomicU64,
    /// Subscriptions ever admitted (SUBSCRIBE + RESUME).
    pub subscriptions_total: AtomicU64,
    /// Input rows delivered to workers (rows × subscribers).
    pub rows_fed_total: AtomicU64,
    /// FEED frames appended to a channel WAL (`--data-dir` only).
    pub wal_appends_total: AtomicU64,
    /// fsyncs issued against channel WALs.
    pub wal_fsyncs_total: AtomicU64,
    /// WAL truncations past the snapshot low-water mark.
    pub wal_truncations_total: AtomicU64,
    /// Subscription checkpoint snapshots written to disk.
    pub snapshots_total: AtomicU64,
    /// Subscriptions respawned from snapshots at startup recovery.
    pub recovered_subscriptions_total: AtomicU64,
    /// Replication frames a standby accepted and appended.
    pub repl_frames_received_total: AtomicU64,
    /// Replication frames a standby rejected (bad CRC, malformed rows,
    /// sequence gaps).
    pub repl_rejected_frames_total: AtomicU64,
    /// Successful standby promotions on this server.
    pub repl_promotions_total: AtomicU64,
    /// Hot-path latency histograms (µs buckets).
    pub latency: LatencyHistograms,
    finished: Mutex<Vec<(String, Box<ExecutionProfile>)>>,
    retain_profiles: usize,
}

impl ServerMetrics {
    /// A fresh registry retaining at most `retain_profiles` finished
    /// subscription profiles (oldest evicted first).
    pub fn new(retain_profiles: usize) -> ServerMetrics {
        ServerMetrics {
            retain_profiles,
            ..ServerMetrics::default()
        }
    }

    /// Bump a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Retain a finished subscription's profile for future scrapes.
    pub fn retain_profile(&self, tenant: &str, profile: Box<ExecutionProfile>) {
        if self.retain_profiles == 0 {
            return;
        }
        let Ok(mut slot) = self.finished.lock() else {
            return;
        };
        if slot.len() == self.retain_profiles {
            slot.remove(0);
        }
        slot.push((tenant.to_string(), profile));
    }

    /// Render the merged exposition.  `live` is one pre-rendered gauge
    /// block per live subscription (see [`live_gauges`]).
    pub fn render(&self, live: &[String]) -> String {
        let mut out = String::new();
        for (name, help, value) in [
            (
                "sqlts_server_connections_total",
                "TCP connections accepted",
                &self.connections_total,
            ),
            (
                "sqlts_server_frames_total",
                "protocol frames decoded",
                &self.frames_total,
            ),
            (
                "sqlts_server_errors_total",
                "frames answered with ERR",
                &self.errors_total,
            ),
            (
                "sqlts_server_subscriptions_total",
                "subscriptions admitted",
                &self.subscriptions_total,
            ),
            (
                "sqlts_server_rows_fed_total",
                "rows delivered to workers",
                &self.rows_fed_total,
            ),
            (
                "sqlts_server_wal_appends_total",
                "FEED frames appended to channel WALs",
                &self.wal_appends_total,
            ),
            (
                "sqlts_server_wal_fsyncs_total",
                "fsyncs issued against channel WALs",
                &self.wal_fsyncs_total,
            ),
            (
                "sqlts_server_wal_truncations_total",
                "WAL truncations past the snapshot low-water mark",
                &self.wal_truncations_total,
            ),
            (
                "sqlts_server_snapshots_total",
                "subscription checkpoint snapshots written",
                &self.snapshots_total,
            ),
            (
                "sqlts_server_recovered_subscriptions_total",
                "subscriptions respawned from snapshots at recovery",
                &self.recovered_subscriptions_total,
            ),
            (
                "sqlts_repl_frames_received_total",
                "replication frames accepted and appended (standby)",
                &self.repl_frames_received_total,
            ),
            (
                "sqlts_repl_rejected_frames_total",
                "replication frames rejected (crc, malformed, gap)",
                &self.repl_rejected_frames_total,
            ),
            (
                "sqlts_repl_promotions_total",
                "standby promotions completed",
                &self.repl_promotions_total,
            ),
        ] {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}",
                value.load(Ordering::Relaxed)
            );
        }
        self.latency.render_prometheus(&mut out);
        out.push_str("# TYPE sqlts_sub_records gauge\n");
        out.push_str("# TYPE sqlts_sub_skipped gauge\n");
        out.push_str("# TYPE sqlts_sub_quarantined gauge\n");
        out.push_str("# TYPE sqlts_sub_tripped gauge\n");
        out.push_str("# TYPE sqlts_sub_queue_depth gauge\n");
        for block in live {
            out.push_str(block);
        }
        // Finished profiles: each exposition repeats its own # TYPE
        // headers, so dedupe them across the splice.
        let mut seen_types: HashSet<String> = HashSet::new();
        if let Ok(finished) = self.finished.lock() {
            for (tenant, profile) in finished.iter() {
                for line in profile.to_prometheus_labeled(&[("tenant", tenant)]).lines() {
                    if line.starts_with("# TYPE") && !seen_types.insert(line.to_string()) {
                        continue;
                    }
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Render one live subscription's gauges (tenant-labeled, names declared
/// once by [`ServerMetrics::render`]).  `queue_depth` is the worker's
/// live command-queue occupancy.
pub fn live_gauges(tenant: &str, status: &sqlts_core::SessionStatus, queue_depth: u64) -> String {
    let t = escape_label(tenant);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sqlts_sub_records{{tenant=\"{t}\"}} {}",
        status.records
    );
    let _ = writeln!(
        out,
        "sqlts_sub_skipped{{tenant=\"{t}\"}} {}",
        status.skipped
    );
    let _ = writeln!(
        out,
        "sqlts_sub_quarantined{{tenant=\"{t}\"}} {}",
        status.quarantined
    );
    let _ = writeln!(
        out,
        "sqlts_sub_tripped{{tenant=\"{t}\"}} {}",
        u8::from(status.trip.is_some())
    );
    let _ = writeln!(out, "sqlts_sub_queue_depth{{tenant=\"{t}\"}} {queue_depth}");
    out
}

/// Render the primary-side replication gauges/counters as one
/// Prometheus block (`sqlts_repl_*`).  Only emitted when
/// `--replicate-to` is configured; the standby-side counters live on
/// [`ServerMetrics`] and render unconditionally.
pub fn repl_exposition(snap: &crate::replicate::ReplSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in [
        (
            "sqlts_repl_connected",
            "a shipping session to the standby is live",
            u64::from(snap.connected),
        ),
        (
            "sqlts_repl_lag_rows",
            "rows committed locally but not standby-acked",
            snap.lag_rows,
        ),
        (
            "sqlts_repl_frames_sent_total",
            "WAL frames shipped to the standby",
            snap.frames_sent,
        ),
        (
            "sqlts_repl_acks_total",
            "standby frame acknowledgements received",
            snap.acks,
        ),
        (
            "sqlts_repl_resyncs_total",
            "shipping sessions established (each starts with a resync)",
            snap.resyncs,
        ),
        (
            "sqlts_repl_send_errors_total",
            "failed ships (each costs the session)",
            snap.send_errors,
        ),
        (
            "sqlts_repl_sync_degraded_total",
            "sync-ack FEEDs that degraded to async",
            snap.sync_degraded,
        ),
    ] {
        let kind = if name.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}");
    }
    out
}

/// Escape a tenant id for a Prometheus label value: backslash, quote,
/// and newline.  A raw newline in a label would split the sample line
/// and corrupt the whole scrape.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One subscription's row in the `/status` JSON document — the live
/// registry view, assembled by the server under its locks.
#[derive(Debug)]
pub struct SubStatusView {
    /// The subscription id.
    pub id: String,
    /// The channel it consumes.
    pub channel: String,
    /// The worker's point-in-time session status.
    pub status: sqlts_core::SessionStatus,
    /// Live command-queue occupancy.
    pub queue_depth: u64,
    /// The phase the worker published most recently.
    pub phase: &'static str,
}

/// Render the `GET /status` JSON document: server counters, latency
/// summaries, replication health, and one object per live subscription.
/// Hand-rolled flat JSON, same as every other exporter in the workspace.
pub fn status_json(
    metrics: &ServerMetrics,
    subs: &[SubStatusView],
    draining: bool,
    standby: bool,
    repl: Option<&crate::replicate::ReplSnapshot>,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"draining\":{draining},\"standby\":{standby},\"connections_total\":{},\
         \"frames_total\":{},\
         \"errors_total\":{},\"subscriptions_total\":{},\"rows_fed_total\":{},\
         \"wal_appends_total\":{},\"wal_fsyncs_total\":{},\"snapshots_total\":{}",
        metrics.connections_total.load(Ordering::Relaxed),
        metrics.frames_total.load(Ordering::Relaxed),
        metrics.errors_total.load(Ordering::Relaxed),
        metrics.subscriptions_total.load(Ordering::Relaxed),
        metrics.rows_fed_total.load(Ordering::Relaxed),
        metrics.wal_appends_total.load(Ordering::Relaxed),
        metrics.wal_fsyncs_total.load(Ordering::Relaxed),
        metrics.snapshots_total.load(Ordering::Relaxed),
    );
    if let Some(snap) = repl {
        let _ = write!(
            out,
            ",\"replication\":{{\"connected\":{},\"sync\":{},\"lag_rows\":{},\
             \"frames_sent\":{},\"acks\":{},\"resyncs\":{},\"send_errors\":{},\
             \"sync_degraded\":{}}}",
            snap.connected,
            snap.sync,
            snap.lag_rows,
            snap.frames_sent,
            snap.acks,
            snap.resyncs,
            snap.send_errors,
            snap.sync_degraded,
        );
    }
    out.push_str(",\"latency\":");
    metrics.latency.write_json(&mut out);
    out.push_str(",\"subscriptions\":[");
    for (i, sub) in subs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":\"");
        json_escape(&sub.id, &mut out);
        out.push_str("\",\"channel\":\"");
        json_escape(&sub.channel, &mut out);
        let _ = write!(
            out,
            "\",\"records\":{},\"skipped\":{},\"quarantined\":{},\"window_bytes\":{},\
             \"queue_depth\":{},\"phase\":\"{}\",\"poisoned\":{}",
            sub.status.records,
            sub.status.skipped,
            sub.status.quarantined,
            sub.status.window_bytes,
            sub.queue_depth,
            sub.phase,
            sub.status.poisoned,
        );
        match &sub.status.trip {
            Some(trip) => {
                out.push_str(",\"trip\":\"");
                json_escape(&trip.to_string(), &mut out);
                out.push_str("\"}");
            }
            None => out.push_str(",\"trip\":null}"),
        }
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_lines_are_deduped_across_finished_profiles() {
        let metrics = ServerMetrics::new(4);
        ServerMetrics::inc(&metrics.connections_total);
        let profile = ExecutionProfile::new("ops", 2);
        metrics.retain_profile("a", Box::new(profile));
        let profile = ExecutionProfile::new("ops", 2);
        metrics.retain_profile("b", Box::new(profile));
        let out = metrics.render(&[]);
        let type_matches = out
            .lines()
            .filter(|l| *l == "# TYPE sqlts_matches_total counter")
            .count();
        assert_eq!(type_matches, 1, "{out}");
        assert!(out.contains("sqlts_matches_total{tenant=\"a\"} 0"), "{out}");
        assert!(out.contains("sqlts_matches_total{tenant=\"b\"} 0"), "{out}");
        assert!(out.contains("sqlts_server_connections_total 1"), "{out}");
    }

    #[test]
    fn latency_histograms_render_into_scrape_and_status() {
        let metrics = ServerMetrics::new(4);
        metrics.latency.record_ns(LatencyOp::WalAppend, 3_000);
        metrics.latency.record_ns(LatencyOp::WalAppend, 9_000);
        metrics.latency.record_ns(LatencyOp::Fsync, 1_500_000);
        let out = metrics.render(&[]);
        assert!(
            out.contains("# TYPE sqlts_server_wal_append_micros histogram"),
            "{out}"
        );
        assert!(
            out.contains("sqlts_server_wal_append_micros_count 2"),
            "{out}"
        );
        assert!(
            out.contains("sqlts_server_wal_append_micros_sum 12"),
            "{out}"
        );
        assert!(out.contains("sqlts_server_fsync_micros_count 1"), "{out}");
        // Unrecorded ops still render complete (empty) histogram blocks.
        assert!(
            out.contains("sqlts_server_fanout_micros_bucket{le=\"+Inf\"} 0"),
            "{out}"
        );
        let status = status_json(&metrics, &[], false, false, None);
        assert!(
            status.contains("\"wal_append_micros\":{\"count\":2,\"sum\":12,\"max\":9}"),
            "{status}"
        );
        assert!(status.contains("\"draining\":false"), "{status}");
        assert!(status.contains("\"standby\":false"), "{status}");
        assert!(!status.contains("\"replication\""), "{status}");
    }

    #[test]
    fn tenant_labels_escape_quotes_backslashes_and_newlines() {
        let status = sqlts_core::SessionStatus {
            records: 1,
            skipped: 0,
            quarantined: 0,
            window_bytes: 0,
            predicate_tests: 0,
            trip: None,
            poisoned: false,
        };
        let block = live_gauges("a\"b\\c\nd", &status, 3);
        assert!(
            block.contains("sqlts_sub_records{tenant=\"a\\\"b\\\\c\\nd\"} 1"),
            "{block}"
        );
        assert!(
            block.contains("sqlts_sub_queue_depth{tenant=\"a\\\"b\\\\c\\nd\"} 3"),
            "{block}"
        );
        for line in block.lines() {
            assert!(!line.is_empty(), "raw newline split a sample line: {block}");
        }
        assert_eq!(block.lines().count(), 5, "{block}");
    }

    #[test]
    fn status_json_lists_subscriptions_and_balances() {
        let metrics = ServerMetrics::new(4);
        let subs = vec![SubStatusView {
            id: "s\"1".into(),
            channel: "nyse".into(),
            status: sqlts_core::SessionStatus {
                records: 40,
                skipped: 2,
                quarantined: 1,
                window_bytes: 512,
                predicate_tests: 0,
                trip: None,
                poisoned: false,
            },
            queue_depth: 0,
            phase: "idle",
        }];
        let snap = crate::replicate::ReplSnapshot {
            configured: true,
            connected: true,
            sync: true,
            frames_sent: 9,
            acks: 8,
            resyncs: 1,
            send_errors: 0,
            sync_degraded: 2,
            lag_rows: 3,
        };
        let out = status_json(&metrics, &subs, true, false, Some(&snap));
        assert!(out.contains("\"draining\":true"), "{out}");
        assert!(
            out.contains("\"replication\":{\"connected\":true,\"sync\":true,\"lag_rows\":3"),
            "{out}"
        );
        assert!(out.contains("\"id\":\"s\\\"1\""), "{out}");
        assert!(out.contains("\"records\":40"), "{out}");
        assert!(out.contains("\"phase\":\"idle\""), "{out}");
        assert!(out.contains("\"trip\":null"), "{out}");
        assert_eq!(
            out.matches(['{', '[']).count(),
            out.matches(['}', ']']).count(),
            "unbalanced status JSON: {out}"
        );
    }

    #[test]
    fn repl_exposition_renders_every_series() {
        let snap = crate::replicate::ReplSnapshot {
            configured: true,
            connected: true,
            sync: false,
            frames_sent: 5,
            acks: 5,
            resyncs: 2,
            send_errors: 1,
            sync_degraded: 0,
            lag_rows: 7,
        };
        let out = repl_exposition(&snap);
        assert!(out.contains("# TYPE sqlts_repl_connected gauge"), "{out}");
        assert!(out.contains("sqlts_repl_connected 1"), "{out}");
        assert!(out.contains("sqlts_repl_lag_rows 7"), "{out}");
        assert!(
            out.contains("# TYPE sqlts_repl_frames_sent_total counter"),
            "{out}"
        );
        assert!(out.contains("sqlts_repl_frames_sent_total 5"), "{out}");
        assert!(out.contains("sqlts_repl_resyncs_total 2"), "{out}");
        assert!(out.contains("sqlts_repl_send_errors_total 1"), "{out}");
        for line in out.lines() {
            assert!(!line.is_empty(), "{out}");
        }
    }

    #[test]
    fn retention_evicts_oldest() {
        let metrics = ServerMetrics::new(1);
        metrics.retain_profile("old", Box::new(ExecutionProfile::new("ops", 1)));
        metrics.retain_profile("new", Box::new(ExecutionProfile::new("ops", 1)));
        let out = metrics.render(&[]);
        assert!(!out.contains("tenant=\"old\""));
        assert!(out.contains("tenant=\"new\""));
    }
}
