//! The TCP server: accept loop, per-connection protocol driver, shared
//! channel/subscription registries, and the `GET /metrics` HTTP shim.
//!
//! ## Protocol
//!
//! Every frame (see [`crate::frame`]) carries one request or one reply.
//! Request payloads are a verb line plus optional body lines:
//!
//! ```text
//! PING
//! OPEN <channel> <name:type,...>
//! SUBSCRIBE <sub-id> <channel>
//! <SQL-TS query ...>
//! RESUME <sub-id> <channel>
//! <SQL-TS query on one line>
//! <sqlts-checkpoint v1 text ...>
//! FEED <channel>
//! <csv row>
//! <csv row ...>
//! STATUS <sub-id>
//! CHECKPOINT <sub-id>
//! UNSUBSCRIBE <sub-id>
//! ```
//!
//! Replies are `OK ...`, `ERR <code> <message>` (codes mirror the CLI's
//! exit classes: 2 usage/protocol, 3 input, 4 runtime/governed/admission,
//! 5 quarantine), `CHECKPOINT <sub-id>` + checkpoint text, or
//! `RESULT <sub-id> <code>` + CSV — the latter carrying partial results
//! with code 4 when the subscription's governor tripped.
//!
//! ## Tenancy model
//!
//! A *channel* is a named, schema-typed input feed; any connection may
//! `FEED` it and every subscription on it sees the same tuples.  A
//! *subscription* is one standing query over one channel, owned by the
//! connection that created it: it runs on its own
//! [`SessionWorker`] thread with the server's default governor budgets,
//! a bounded command queue (admission control), and an idle-poll interval
//! that trips stalled tenants' wall-clock deadlines.  When a connection
//! closes, its subscriptions are finished and their profiles retained for
//! `/metrics`; a client that wants to survive a disconnect takes a
//! `CHECKPOINT` first and `RESUME`s on a new connection.

use crate::frame::{read_frame, write_frame, FrameEvent, FrameFatal};
use crate::metrics::{live_gauges, ServerMetrics};
use sqlts_core::{
    EngineKind, Governor, Instrument, SessionWorker, SessionWorkerConfig, TripReason, WorkerError,
};
use sqlts_relation::{parse_headerless_row, ColumnType, Schema};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Everything the server needs to stand up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub listen: String,
    /// Admission cap: maximum concurrently live subscriptions.
    pub max_subscriptions: usize,
    /// Per-subscription command-queue depth (backpressure bound).
    pub queue_depth: usize,
    /// Idle-poll interval for stalled-deadline reclamation.
    pub poll_interval: Duration,
    /// Largest accepted frame payload; larger frames are drained and
    /// answered with `ERR 2`.
    pub max_frame_bytes: usize,
    /// Default resource budgets applied to every subscription.
    pub governor: Governor,
    /// Engine for fresh subscriptions (resume adopts the checkpoint's).
    pub engine: EngineKind,
    /// How many finished subscription profiles `/metrics` retains.
    pub retain_profiles: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_subscriptions: 64,
            queue_depth: 16,
            poll_interval: Duration::from_millis(50),
            max_frame_bytes: 1 << 20,
            governor: Governor::unlimited(),
            engine: EngineKind::Ops,
            retain_profiles: 32,
        }
    }
}

struct Subscription {
    worker: Arc<SessionWorker>,
    channel: String,
    conn: u64,
}

struct Shared {
    config: ServerConfig,
    channels: Mutex<HashMap<String, Schema>>,
    subs: Mutex<HashMap<String, Subscription>>,
    metrics: ServerMetrics,
    next_conn: AtomicU64,
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket (fails fast on a bad address).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        let retain = config.retain_profiles;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                channels: Mutex::new(HashMap::new()),
                subs: Mutex::new(HashMap::new()),
                metrics: ServerMetrics::new(retain),
                next_conn: AtomicU64::new(1),
            }),
        })
    }

    /// The actually-bound address (resolves `:0`).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one thread per connection.
    pub fn run(&self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let shared = Arc::clone(&self.shared);
            let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
            ServerMetrics::inc(&shared.metrics.connections_total);
            let _ = std::thread::Builder::new()
                .name(format!("sqlts-conn-{conn}"))
                .spawn(move || {
                    let _ = handle_connection(&shared, stream, conn);
                    reap_connection(&shared, conn);
                });
        }
    }
}

/// Finish (and retain profiles of) every subscription the closed
/// connection owned, releasing their worker threads and budgets.
fn reap_connection(shared: &Shared, conn: u64) {
    let orphans: Vec<(String, Subscription)> = {
        let Ok(mut subs) = shared.subs.lock() else {
            return;
        };
        let ids: Vec<String> = subs
            .iter()
            .filter(|(_, s)| s.conn == conn)
            .map(|(id, _)| id.clone())
            .collect();
        ids.into_iter()
            .filter_map(|id| subs.remove(&id).map(|s| (id, s)))
            .collect()
    };
    for (id, sub) in orphans {
        if let Ok(report) = sub.worker.finish() {
            if let Some(profile) = report.profile {
                shared.metrics.retain_profile(&id, profile);
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, conn: u64) -> io::Result<()> {
    // HTTP scrapers open with `GET `; everything else is the framed
    // protocol.  Peek so the protocol path sees every byte.
    let mut probe = [0u8; 4];
    let mut seen = 0;
    while seen < probe.len() {
        match stream.peek(&mut probe[seen..])? {
            0 => break,
            n => seen += n,
        }
    }
    if &probe[..seen] == b"GET " {
        return serve_http(shared, stream);
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let event = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(event) => event,
            Err(FrameFatal::Desync(why)) => {
                ServerMetrics::inc(&shared.metrics.errors_total);
                let _ = write_frame(&mut writer, &format!("ERR 2 frame desync: {why}"));
                return Ok(());
            }
            Err(FrameFatal::Io(e)) => return Err(e),
        };
        ServerMetrics::inc(&shared.metrics.frames_total);
        let reply = match event {
            FrameEvent::Eof => return Ok(()),
            FrameEvent::Oversized { len } => Err(format!(
                "ERR 2 frame of {len} bytes exceeds limit {}",
                shared.config.max_frame_bytes
            )),
            FrameEvent::BadUtf8 => Err("ERR 2 frame payload is not UTF-8".into()),
            FrameEvent::Payload(payload) => dispatch(shared, conn, &payload),
        };
        match reply {
            Ok(text) => write_frame(&mut writer, &text)?,
            Err(text) => {
                ServerMetrics::inc(&shared.metrics.errors_total);
                write_frame(&mut writer, &text)?;
            }
        }
    }
}

fn err(code: u8, msg: impl std::fmt::Display) -> String {
    format!("ERR {code} {msg}")
}

fn worker_err(e: &WorkerError) -> String {
    err(e.exit_code(), e)
}

/// Short machine-readable name for a trip cause (`STATUS` replies).
fn trip_name(reason: TripReason) -> &'static str {
    match reason {
        TripReason::Deadline => "deadline",
        TripReason::StepBudget => "steps",
        TripReason::MatchBudget => "matches",
        TripReason::Cancelled => "cancelled",
    }
}

/// Handle one decoded request payload; `Ok` and `Err` are both reply
/// payloads, `Err` marking it for the error counter.
fn dispatch(shared: &Shared, conn: u64, payload: &str) -> Result<String, String> {
    let (head, body) = match payload.split_once('\n') {
        Some((head, body)) => (head, body),
        None => (payload, ""),
    };
    let mut words = head.split_whitespace();
    let verb = words.next().unwrap_or("");
    let args: Vec<&str> = words.collect();
    match (verb, args.as_slice()) {
        ("PING", []) => Ok("OK pong".into()),
        ("OPEN", [chan, spec]) => open_channel(shared, chan, spec),
        ("SUBSCRIBE", [id, chan]) => subscribe(shared, conn, id, chan, body, None),
        ("RESUME", [id, chan]) => {
            let (sql, checkpoint) = body
                .split_once('\n')
                .ok_or_else(|| err(2, "RESUME needs an SQL line and checkpoint text"))?;
            subscribe(shared, conn, id, chan, sql, Some(checkpoint.to_string()))
        }
        ("FEED", [chan]) => feed(shared, chan, body),
        ("STATUS", [id]) => status(shared, id),
        ("CHECKPOINT", [id]) => checkpoint(shared, id),
        ("UNSUBSCRIBE", [id]) => unsubscribe(shared, id),
        ("", _) => Err(err(2, "empty frame")),
        (verb, _) => Err(err(
            2,
            format!(
                "unknown or malformed command '{verb}' (args: {})",
                args.len()
            ),
        )),
    }
}

fn parse_schema_spec(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("bad schema entry '{part}' (want name:type)"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "str" | "string" | "varchar" | "text" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(format!("unknown column type '{other}'")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

fn open_channel(shared: &Shared, chan: &str, spec: &str) -> Result<String, String> {
    let schema = parse_schema_spec(spec).map_err(|e| err(2, e))?;
    let mut channels = shared
        .channels
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    match channels.get(chan) {
        Some(existing) if *existing == schema => Ok(format!("OK opened {chan}")),
        Some(_) => Err(err(
            2,
            format!("channel '{chan}' already open with a different schema"),
        )),
        None => {
            channels.insert(chan.to_string(), schema);
            Ok(format!("OK opened {chan}"))
        }
    }
}

fn subscribe(
    shared: &Shared,
    conn: u64,
    id: &str,
    chan: &str,
    sql: &str,
    resume_from: Option<String>,
) -> Result<String, String> {
    if sql.trim().is_empty() {
        return Err(err(2, "missing SQL body"));
    }
    let schema = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(chan)
            .cloned()
            .ok_or_else(|| err(2, format!("unknown channel '{chan}' (OPEN it first)")))?
    };
    {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        if subs.contains_key(id) {
            return Err(err(2, format!("subscription id '{id}' is taken")));
        }
        if subs.len() >= shared.config.max_subscriptions {
            return Err(err(
                4,
                format!(
                    "admission: subscription limit {} reached",
                    shared.config.max_subscriptions
                ),
            ));
        }
    }
    let mut config = SessionWorkerConfig::new(id, sql, schema);
    config.queue_depth = shared.config.queue_depth;
    config.poll_interval = shared.config.poll_interval;
    config.stream.exec.engine = shared.config.engine;
    config.stream.exec.governor = shared.config.governor.clone();
    config.stream.exec.instrument = Instrument::profiling();
    let resumed = resume_from.is_some();
    config.resume_from = resume_from;
    let worker = SessionWorker::spawn(config).map_err(|e| worker_err(&e))?;
    let mut subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
    // Re-check under the lock: another connection may have raced us.
    if subs.contains_key(id) {
        return Err(err(2, format!("subscription id '{id}' is taken")));
    }
    if subs.len() >= shared.config.max_subscriptions {
        return Err(err(4, "admission: subscription limit reached"));
    }
    subs.insert(
        id.to_string(),
        Subscription {
            worker: Arc::new(worker),
            channel: chan.to_string(),
            conn,
        },
    );
    ServerMetrics::inc(&shared.metrics.subscriptions_total);
    let what = if resumed { "resumed" } else { "subscribed" };
    Ok(format!("OK {what} {id} {chan}"))
}

fn feed(shared: &Shared, chan: &str, body: &str) -> Result<String, String> {
    let schema = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(chan)
            .cloned()
            .ok_or_else(|| err(2, format!("unknown channel '{chan}'")))?
    };
    // Parse the whole frame before feeding anything: a malformed row
    // rejects the frame atomically instead of leaving subscribers halfway
    // through it.
    let mut rows = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        rows.push(parse_headerless_row(&schema, line, i + 1).map_err(|e| err(3, e))?);
    }
    let workers: Vec<Arc<SessionWorker>> = {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        subs.values()
            .filter(|s| s.channel == chan)
            .map(|s| Arc::clone(&s.worker))
            .collect()
    };
    let mut tripped = 0u64;
    for row in &rows {
        for worker in &workers {
            match worker.feed(row.clone()) {
                Ok(()) => {}
                // A governed/overflowed subscription stays latched; its
                // partial result is delivered at UNSUBSCRIBE.  The feed
                // keeps flowing to the healthy subscriptions.
                Err(_) => tripped += 1,
            }
        }
    }
    ServerMetrics::add(
        &shared.metrics.rows_fed_total,
        rows.len() as u64 * workers.len() as u64,
    );
    Ok(format!(
        "OK fed {} subs={} rejected={tripped}",
        rows.len(),
        workers.len()
    ))
}

fn lookup(shared: &Shared, id: &str) -> Result<Arc<SessionWorker>, String> {
    let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
    subs.get(id)
        .map(|s| Arc::clone(&s.worker))
        .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))
}

fn status(shared: &Shared, id: &str) -> Result<String, String> {
    let worker = lookup(shared, id)?;
    let status = worker.status().map_err(|e| worker_err(&e))?;
    Ok(format!(
        "OK status records={} skipped={} quarantined={} window={} trip={} poisoned={}",
        status.records,
        status.skipped,
        status.quarantined,
        status.window_bytes,
        status.trip.map_or("none", |t| trip_name(t.reason)),
        u8::from(status.poisoned),
    ))
}

fn checkpoint(shared: &Shared, id: &str) -> Result<String, String> {
    let worker = lookup(shared, id)?;
    let text = worker.snapshot().map_err(|e| worker_err(&e))?;
    Ok(format!("CHECKPOINT {id}\n{text}"))
}

fn unsubscribe(shared: &Shared, id: &str) -> Result<String, String> {
    let sub = {
        let mut subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        subs.remove(id)
            .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))?
    };
    let report = sub.worker.finish().map_err(|e| worker_err(&e))?;
    if let Some(profile) = report.profile {
        shared.metrics.retain_profile(id, profile);
    }
    // Exit-style result code: 0 clean, 4 governed/runtime — partial CSV
    // rides along either way.
    let code = if report.error.is_some() || report.trip.is_some() {
        4
    } else {
        0
    };
    let mut head = format!("RESULT {id} {code} rows={}", report.rows);
    if let Some(trip) = &report.trip {
        head.push_str(&format!(" trip={}", trip_name(trip.reason)));
    }
    if let Some(error) = &report.error {
        head.push_str(&format!(
            " error={}",
            error.replace(char::is_whitespace, "_")
        ));
    }
    Ok(format!("{head}\n{}", report.csv))
}

/// Minimal HTTP/1.1 shim: `GET /metrics` serves the Prometheus
/// exposition, everything else 404s.  One request per connection.
fn serve_http(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients aren't reset mid-send.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let mut writer = stream;
    if path == "/metrics" || path.starts_with("/metrics?") {
        let live: Vec<String> = {
            let handles: Vec<(String, Arc<SessionWorker>)> = shared
                .subs
                .lock()
                .map(|subs| {
                    subs.iter()
                        .map(|(id, s)| (id.clone(), Arc::clone(&s.worker)))
                        .collect()
                })
                .unwrap_or_default();
            handles
                .iter()
                .filter_map(|(id, worker)| worker.status().ok().map(|st| live_gauges(id, &st)))
                .collect()
        };
        let body = shared.metrics.render(&live);
        write!(
            writer,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
    } else {
        let body = "not found: only GET /metrics is served\n";
        write!(
            writer,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_spec_round_trip_and_errors() {
        let schema = parse_schema_spec("name:str,day:int,price:float").unwrap();
        assert_eq!(schema.arity(), 3);
        assert!(parse_schema_spec("name").is_err());
        assert!(parse_schema_spec("name:blob").is_err());
    }

    #[test]
    fn unknown_verbs_and_empty_frames_are_usage_errors() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        for payload in ["", "WHAT is this", "SUBSCRIBE onlyone", "OPEN q"] {
            let reply = dispatch(shared, 1, payload).unwrap_err();
            assert!(reply.starts_with("ERR 2 "), "{payload:?} -> {reply}");
        }
        assert_eq!(dispatch(shared, 1, "PING").unwrap(), "OK pong");
    }

    #[test]
    fn end_to_end_over_dispatch() {
        // Protocol-level round trip without sockets: open, subscribe,
        // feed, status, checkpoint, unsubscribe.
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        // Same schema is idempotent; different schema is rejected.
        dispatch(shared, 2, "OPEN q name:str,day:int,price:float").unwrap();
        assert!(dispatch(shared, 2, "OPEN q name:str").is_err());
        let sql = "SELECT X.name, Z.day AS day FROM q CLUSTER BY name SEQUENCE BY day \
                   AS (X, *Y, Z) WHERE Y.price > Y.previous.price \
                   AND Z.price < Z.previous.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s1 q\n{sql}")).unwrap();
        assert!(
            dispatch(shared, 1, &format!("SUBSCRIBE s1 q\n{sql}")).is_err(),
            "duplicate id must be rejected"
        );
        let mut body = String::new();
        for day in 0..40 {
            let wave = (day % 7) as f64;
            body.push_str(&format!("AAA,{day},{}\n", 100.0 + 3.0 * wave));
        }
        let reply = dispatch(shared, 1, &format!("FEED q\n{body}")).unwrap();
        assert!(reply.starts_with("OK fed 40 subs=1"), "{reply}");
        let status = dispatch(shared, 1, "STATUS s1").unwrap();
        assert!(status.contains("records=40"), "{status}");
        assert!(status.contains("trip=none"), "{status}");
        let cp = dispatch(shared, 1, "CHECKPOINT s1").unwrap();
        assert!(
            cp.starts_with("CHECKPOINT s1\nsqlts-checkpoint v1\n"),
            "{cp}"
        );
        let result = dispatch(shared, 1, "UNSUBSCRIBE s1").unwrap();
        let head = result.lines().next().unwrap();
        assert!(head.starts_with("RESULT s1 0 rows="), "{head}");
        assert!(result.contains("name,day\n"), "{result}");
        // Resume from the checkpoint under a new id and finish empty-handed
        // but cleanly (no further rows).
        let text = cp.strip_prefix("CHECKPOINT s1\n").unwrap();
        dispatch(shared, 1, &format!("RESUME s2 q\n{sql}\n{text}")).unwrap();
        let resumed = dispatch(shared, 1, "UNSUBSCRIBE s2").unwrap();
        assert!(resumed.lines().next().unwrap().starts_with("RESULT s2 0"));
    }

    #[test]
    fn admission_limit_is_enforced() {
        let config = ServerConfig {
            max_subscriptions: 1,
            ..ServerConfig::default()
        };
        let server = Server::bind(config).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE a q\n{sql}")).unwrap();
        let reply = dispatch(shared, 1, &format!("SUBSCRIBE b q\n{sql}")).unwrap_err();
        assert!(reply.starts_with("ERR 4 admission"), "{reply}");
        // Freeing the slot re-admits.
        dispatch(shared, 1, "UNSUBSCRIBE a").unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE b q\n{sql}")).unwrap();
    }

    #[test]
    fn feeds_are_channel_scoped() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN a name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, "OPEN b ticker:str,t:int,volume:float").unwrap();
        let sql_a = "SELECT X.name FROM a CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                     WHERE Z.price < X.price";
        let sql_b = "SELECT X.ticker FROM b CLUSTER BY ticker SEQUENCE BY t AS (X, Z) \
                     WHERE Z.volume < X.volume";
        dispatch(shared, 1, &format!("SUBSCRIBE sa a\n{sql_a}")).unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE sb b\n{sql_b}")).unwrap();
        // A feed on channel a must reach only a's subscription — b's has a
        // different schema and must never see these rows.
        let reply = dispatch(shared, 1, "FEED a\nIBM,1,50.0").unwrap();
        assert!(reply.starts_with("OK fed 1 subs=1"), "{reply}");
        let sb = dispatch(shared, 1, "STATUS sb").unwrap();
        assert!(sb.contains("records=0"), "{sb}");
    }

    #[test]
    fn bad_sql_and_bad_rows_map_to_input_codes() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let reply = dispatch(shared, 1, "SUBSCRIBE s q\nSELECT garbage FROM").unwrap_err();
        assert!(reply.starts_with("ERR 3 "), "{reply}");
        let reply = dispatch(shared, 1, "FEED q\nIBM,notaday,50").unwrap_err();
        assert!(reply.starts_with("ERR 3 "), "{reply}");
    }
}
