//! The TCP server: accept loop, per-connection protocol driver, shared
//! channel/subscription registries, and the `GET /metrics` HTTP shim.
//!
//! ## Protocol
//!
//! Every frame (see [`crate::frame`]) carries one request or one reply.
//! Request payloads are a verb line plus optional body lines:
//!
//! ```text
//! PING
//! OPEN <channel> <name:type,...>
//! SUBSCRIBE <sub-id> <channel>
//! <SQL-TS query ...>
//! RESUME <sub-id> <channel>
//! <SQL-TS query on one line>
//! <sqlts-checkpoint v1 text ...>
//! FEED <channel>
//! <csv row>
//! <csv row ...>
//! STATUS <sub-id>
//! CHECKPOINT <sub-id>
//! UNSUBSCRIBE <sub-id>
//! ```
//!
//! Replies are `OK ...`, `ERR <code> <message>` (codes mirror the CLI's
//! exit classes: 2 usage/protocol, 3 input, 4 runtime/governed/admission,
//! 5 quarantine), `CHECKPOINT <sub-id>` + checkpoint text, or
//! `RESULT <sub-id> <code>` + CSV — the latter carrying partial results
//! with code 4 when the subscription's governor tripped.
//!
//! ## Tenancy model
//!
//! A *channel* is a named, schema-typed input feed; any connection may
//! `FEED` it and every subscription on it sees the same tuples.  A
//! *subscription* is one standing query over one channel, owned by the
//! connection that created it: it runs on its own
//! [`SessionWorker`] thread with the server's default governor budgets,
//! a bounded command queue (admission control), and an idle-poll interval
//! that trips stalled tenants' wall-clock deadlines.  When a connection
//! closes, its subscriptions are finished and their profiles retained for
//! `/metrics`; a client that wants to survive a disconnect takes a
//! `CHECKPOINT` first and `RESUME`s on a new connection.
//!
//! ## Durability (`--data-dir`)
//!
//! With a data directory configured the server becomes crash-safe:
//!
//! * every accepted `FEED` frame is appended to the channel's WAL
//!   ([`crate::wal`]) *before* it fans out, under the channel's persist
//!   lock, so WAL order is exactly feed order;
//! * every subscription's checkpoint is snapshotted atomically every
//!   [`ServerConfig::checkpoint_every_frames`] frames and on fresh
//!   governor trips, and the minimum snapshot position (the low-water
//!   mark) truncates the WAL behind it;
//! * on restart [`Server::bind`] recovers: channels reopen, workers
//!   resume from their snapshots, and the WAL tail replays exactly the
//!   rows each worker has not seen — making output and metrics
//!   byte-identical to an uninterrupted run (see [`crate::recover`]);
//! * recovered subscriptions belong to connection 0, which never closes:
//!   they outlive their original client, and any connection may
//!   `STATUS`/`CHECKPOINT`/`UNSUBSCRIBE` them.
//!
//! Without `--data-dir` nothing below changes observably: no files, no
//! extra reply fields, identical wire traffic.

use crate::frame::{read_frame_timed, write_frame, FrameEvent, FrameFatal};
use crate::metrics::{live_gauges, status_json, LatencyOp, ServerMetrics, SubStatusView};
use crate::profiler::SamplingProfiler;
use crate::recover::{replay_channel, DataDir, ReplaySub, ServeError, SubMeta};
use crate::wal::{ChannelWal, FsyncPolicy, WalFrame};
use sqlts_core::{
    EngineKind, Governor, Instrument, SessionCheckpoint, SessionWorker, SessionWorkerConfig,
    SetRegistry, SharedSpec, TripReason, WorkerError,
};
use sqlts_relation::{parse_headerless_row, ColumnType, Schema};
use sqlts_trace::{Level, LogFormat, PatternSetStats, SpanLog};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Whether subscriptions on a channel share one pattern-set pass
/// (`--shared-matcher`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SharedMatcherMode {
    /// Every subscription runs its own matcher — prior releases' behaviour.
    #[default]
    Off,
    /// Subscriptions join their channel's shared pattern-set registry;
    /// queries with no shareable element still fall back to a solo pass.
    On,
    /// Same as `On` today: the registry already declines per query when
    /// nothing is shareable, which is the only fallback rule defined.
    Auto,
}

impl SharedMatcherMode {
    /// Parse a `--shared-matcher` flag value.
    pub fn parse(value: &str) -> Option<SharedMatcherMode> {
        match value {
            "off" => Some(SharedMatcherMode::Off),
            "on" => Some(SharedMatcherMode::On),
            "auto" => Some(SharedMatcherMode::Auto),
            _ => None,
        }
    }

    fn enabled(self) -> bool {
        self != SharedMatcherMode::Off
    }
}

/// Everything the server needs to stand up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub listen: String,
    /// Admission cap: maximum concurrently live subscriptions.
    pub max_subscriptions: usize,
    /// Per-subscription command-queue depth (backpressure bound).
    pub queue_depth: usize,
    /// Idle-poll interval for stalled-deadline reclamation.
    pub poll_interval: Duration,
    /// Largest accepted frame payload; larger frames are drained and
    /// answered with `ERR 2`.
    pub max_frame_bytes: usize,
    /// Default resource budgets applied to every subscription.
    pub governor: Governor,
    /// Engine for fresh subscriptions (resume adopts the checkpoint's).
    pub engine: EngineKind,
    /// How many finished subscription profiles `/metrics` retains.
    pub retain_profiles: usize,
    /// Durable state directory; `None` keeps the server fully in-memory
    /// with behaviour identical to previous releases.
    pub data_dir: Option<PathBuf>,
    /// When to fsync WAL appends (only meaningful with `data_dir`).
    pub fsync: FsyncPolicy,
    /// Snapshot every subscription on a channel after this many FEED
    /// frames (clamped to ≥ 1; only meaningful with `data_dir`).
    pub checkpoint_every_frames: u64,
    /// Structured span log destination (`--log`); `None` leaves the hot
    /// path with a single never-taken branch per record site.
    pub log_file: Option<PathBuf>,
    /// Span log encoding (`--log-format json|text`).
    pub log_format: LogFormat,
    /// Span log filter level (`--log-level error|warn|info|debug`).
    pub log_level: Level,
    /// Rotate the span log past this size (`--log-rotate-bytes`; 0
    /// disables rotation).
    pub log_rotate_bytes: u64,
    /// Warn about any frame whose decode+dispatch exceeds this many
    /// milliseconds (`--slow-frame-ms`); `None` disables the check.
    pub slow_frame_ms: Option<u64>,
    /// Collapsed-stack sampling-profile destination
    /// (`--sample-profile`); `None` runs no profiler thread.
    pub sample_profile: Option<PathBuf>,
    /// Profiler sample rate (`--sample-hz`, clamped to 1..=1000).
    pub sample_hz: u32,
    /// Shared pattern-set execution across a channel's subscriptions
    /// (`--shared-matcher on|off|auto`).
    pub shared_matcher: SharedMatcherMode,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_subscriptions: 64,
            queue_depth: 16,
            poll_interval: Duration::from_millis(50),
            max_frame_bytes: 1 << 20,
            governor: Governor::unlimited(),
            engine: EngineKind::Ops,
            retain_profiles: 32,
            data_dir: None,
            fsync: FsyncPolicy::Every,
            checkpoint_every_frames: 64,
            log_file: None,
            log_format: LogFormat::Json,
            log_level: Level::Info,
            log_rotate_bytes: 0,
            slow_frame_ms: None,
            sample_profile: None,
            sample_hz: 99,
            shared_matcher: SharedMatcherMode::Off,
        }
    }
}

struct Subscription {
    worker: Arc<SessionWorker>,
    channel: String,
    conn: u64,
    /// Channel row ordinal when this subscription joined (0 without a
    /// data dir, where it is never read).
    base_rows: u64,
    /// Worker checkpoint record count when it joined (non-zero only for
    /// RESUME and recovery).
    base_records: u64,
}

/// Per-channel durable state, guarded by one mutex so that WAL append
/// order is exactly fan-out order.  Lock ordering: a holder of this lock
/// may take the `subs` lock, never the reverse.
struct ChannelPersist {
    /// Rows accepted on this channel since it was opened (durable: the
    /// WAL's row count when one exists).
    rows_total: u64,
    /// The write-ahead log; `None` without a data dir.
    wal: Option<ChannelWal>,
    /// FEED frames since the last snapshot pass.
    frames_since_snapshot: u64,
    /// Subscription ids whose trip has already forced a snapshot, so a
    /// latched subscription does not snapshot the channel on every frame.
    tripped_seen: HashSet<String>,
}

#[derive(Clone)]
struct Channel {
    schema: Schema,
    persist: Arc<Mutex<ChannelPersist>>,
    /// The channel's shared pattern-set registry.  Always present (it is
    /// an empty `Vec` behind a mutex until someone joins); subscriptions
    /// only join it when [`ServerConfig::shared_matcher`] says so.
    registry: Arc<SetRegistry>,
}

impl Channel {
    fn new(schema: Schema) -> Channel {
        Channel {
            schema,
            persist: Arc::new(Mutex::new(ChannelPersist {
                rows_total: 0,
                wal: None,
                frames_since_snapshot: 0,
                tripped_seen: HashSet::new(),
            })),
            registry: Arc::new(SetRegistry::new()),
        }
    }
}

struct Shared {
    config: ServerConfig,
    channels: Mutex<HashMap<String, Channel>>,
    subs: Mutex<HashMap<String, Subscription>>,
    metrics: ServerMetrics,
    next_conn: AtomicU64,
    /// The locked durable state directory, when configured.
    data: Option<DataDir>,
    /// Live client sockets, for the parting error at drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Set for the rest of the process's life once a drain begins.
    /// Connection reapers check it: the socket shutdowns drain sends wake
    /// every connection thread, and those must not mistake the drain for
    /// a client disconnect and delete durable state the drain just
    /// snapshotted.
    draining: AtomicBool,
    /// The armed structured span log, `None` when `--log` is absent.
    /// Every record site is `if let Some(log) = &shared.log` — one
    /// predictable branch when unarmed, exactly PR 3's discipline.
    log: Option<SpanLog>,
}

impl Shared {
    /// Begin a span if the log is armed; 0 otherwise (and [`span_end`]
    /// of 0 is free).
    fn span_begin(&self, level: Level, name: &str, parent: u64, fields: &[(&str, &str)]) -> u64 {
        match &self.log {
            Some(log) => log.begin(level, name, parent, fields),
            None => 0,
        }
    }

    fn span_end(&self, level: Level, name: &str, id: u64, fields: &[(&str, &str)]) {
        if let Some(log) = &self.log {
            log.end(level, name, id, fields);
        }
    }

    fn span_event(&self, level: Level, name: &str, fields: &[(&str, &str)]) {
        if let Some(log) = &self.log {
            log.event(level, name, fields);
        }
    }
}

/// What a recovery pass restored, for startup diagnostics.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Channels reopened from the data dir.
    pub channels: usize,
    /// Subscriptions respawned from snapshots.
    pub subscriptions: usize,
    /// WAL row deliveries accepted during replay.
    pub rows_replayed: u64,
    /// WAL row deliveries rejected by latched workers during replay.
    pub rows_rejected: u64,
    /// Torn/corrupt WAL tail bytes discarded.
    pub dropped_bytes: u64,
    /// Human-readable notes (one per dropped tail).
    pub notes: Vec<String>,
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    recovery: Option<RecoveryReport>,
    /// The sampling profiler thread (`--sample-profile`); stopped (with
    /// a final flush) at drain, or on drop.
    profiler: Mutex<Option<SamplingProfiler>>,
}

impl Server {
    /// Bind the listen socket, lock the data dir and recover durable
    /// state (both only when `data_dir` is configured).  Every failure is
    /// a typed [`ServeError`] on the CLI's exit-code classes.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| ServeError::Usage(format!("bind {}: {e}", config.listen)))?;
        let data = config
            .data_dir
            .as_ref()
            .map(|root| DataDir::lock(root))
            .transpose()?;
        let log = config
            .log_file
            .as_ref()
            .map(|path| {
                SpanLog::open(
                    path,
                    config.log_level,
                    config.log_format,
                    config.log_rotate_bytes,
                )
                .map_err(|e| ServeError::Usage(format!("open log {}: {e}", path.display())))
            })
            .transpose()?;
        let retain = config.retain_profiles;
        let shared = Arc::new(Shared {
            config,
            channels: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::new(retain),
            next_conn: AtomicU64::new(1),
            data,
            conns: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            log,
        });
        let recovery = if shared.data.is_some() {
            let span = shared.span_begin(Level::Warn, "recovery", 0, &[]);
            let report = recover(&shared)?;
            for note in &report.notes {
                shared.span_event(Level::Warn, "recovery_dropped_tail", &[("note", note)]);
            }
            shared.span_end(
                Level::Warn,
                "recovery",
                span,
                &[
                    ("channels", &report.channels.to_string()),
                    ("subscriptions", &report.subscriptions.to_string()),
                    ("rows_replayed", &report.rows_replayed.to_string()),
                    ("rows_rejected", &report.rows_rejected.to_string()),
                ],
            );
            Some(report)
        } else {
            None
        };
        let profiler = shared.config.sample_profile.clone().map(|path| {
            let registry = Arc::clone(&shared);
            SamplingProfiler::spawn(path, shared.config.sample_hz, move |out| {
                if let Ok(subs) = registry.subs.lock() {
                    for (id, sub) in subs.iter() {
                        out.push((id.clone(), sub.worker.phase_tag().phase().as_str()));
                    }
                }
            })
        });
        Ok(Server {
            listener,
            shared,
            recovery,
            profiler: Mutex::new(profiler),
        })
    }

    /// What recovery restored, when a data dir was configured.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The actually-bound address (resolves `:0`).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one thread per connection.
    pub fn run(&self) -> io::Result<()> {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.run_until(&NEVER)
    }

    /// Accept connections until `shutdown` becomes true, then drain
    /// gracefully: final snapshots, a parting `ERR 4` to every live
    /// client, the data-dir LOCK released, and a clean `Ok(())`.
    pub fn run_until(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                self.drain();
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(false);
                    let shared = Arc::clone(&self.shared);
                    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    ServerMetrics::inc(&shared.metrics.connections_total);
                    shared.span_event(
                        Level::Info,
                        "accept",
                        &[("conn", &conn.to_string()), ("peer", &peer.to_string())],
                    );
                    if let Ok(clone) = stream.try_clone() {
                        if let Ok(mut conns) = shared.conns.lock() {
                            conns.insert(conn, clone);
                        }
                    }
                    let _ = std::thread::Builder::new()
                        .name(format!("sqlts-conn-{conn}"))
                        .spawn(move || {
                            let _ = handle_connection(&shared, stream, conn);
                            reap_connection(&shared, conn);
                            if let Ok(mut conns) = shared.conns.lock() {
                                conns.remove(&conn);
                            }
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn drain(&self) {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        let span = shared.span_begin(Level::Warn, "drain", 0, &[]);
        let channels: Vec<(String, Channel)> = shared
            .channels
            .lock()
            .map(|map| map.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default();
        for (name, channel) in channels {
            if let Ok(mut persist) = channel.persist.lock() {
                snapshot_channel_locked(shared, &name, &mut persist, span);
                if let Some(wal) = persist.wal.as_mut() {
                    if wal.sync().is_ok() {
                        ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                    }
                    shared
                        .metrics
                        .latency
                        .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
                }
            }
        }
        let parted = shared
            .conns
            .lock()
            .map(|mut conns| {
                let n = conns.len();
                for (_, mut stream) in conns.drain() {
                    let _ = write_frame(&mut stream, "ERR 4 server draining");
                    let _ = stream.shutdown(Shutdown::Both);
                }
                n
            })
            .unwrap_or(0);
        // Final flush before the LOCK release so a supervisor restarting
        // on drain-complete sees the whole profile.
        if let Ok(mut slot) = self.profiler.lock() {
            if let Some(profiler) = slot.take() {
                profiler.stop();
            }
        }
        if let Some(data) = shared.data.as_ref() {
            data.release();
        }
        shared.span_end(
            Level::Warn,
            "drain",
            span,
            &[("connections_parted", &parted.to_string())],
        );
        if let Some(log) = &shared.log {
            log.flush();
        }
    }
}

/// Rebuild channels, subscriptions and in-flight rows from a locked data
/// dir: reopen every channel's WAL (truncating torn tails), respawn every
/// subscription from its snapshot, replay the WAL rows each worker has
/// not yet seen, then snapshot everything so a crash loop cannot replay
/// unboundedly.
fn recover(shared: &Shared) -> Result<RecoveryReport, ServeError> {
    let data = shared.data.as_ref().expect("recover requires a data dir");
    let mut report = RecoveryReport::default();
    let mut frames_by_channel: HashMap<String, Vec<WalFrame>> = HashMap::new();
    {
        let mut channels = shared
            .channels
            .lock()
            .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
        for (name, schema) in data.load_channels()? {
            let (wal, scan) = ChannelWal::open(&data.wal_path(&name), shared.config.fsync)?;
            if scan.dropped_bytes > 0 {
                report.dropped_bytes += scan.dropped_bytes;
                report.notes.push(format!(
                    "channel '{name}': dropped {} trailing wal bytes ({})",
                    scan.dropped_bytes,
                    scan.corruption
                        .as_deref()
                        .unwrap_or("unreported corruption")
                ));
            }
            frames_by_channel.insert(name.clone(), scan.frames);
            let channel = Channel {
                schema,
                persist: Arc::new(Mutex::new(ChannelPersist {
                    rows_total: wal.rows_total(),
                    wal: Some(wal),
                    frames_since_snapshot: 0,
                    tripped_seen: HashSet::new(),
                })),
                registry: Arc::new(SetRegistry::new()),
            };
            channels.insert(name, channel);
            report.channels += 1;
        }
    }
    // Respawn each persisted subscription from its snapshot.  The resume
    // ordinal — the first channel row the worker has NOT seen — is the
    // join-time base plus the records its checkpoint gained since.
    let mut resume_at: HashMap<String, u64> = HashMap::new();
    for (id, meta, checkpoint) in data.load_subs()? {
        let (schema, registry) = {
            let channels = shared
                .channels
                .lock()
                .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
            channels
                .get(&meta.channel)
                .map(|c| (c.schema.clone(), Arc::clone(&c.registry)))
        }
        .ok_or_else(|| {
            ServeError::Input(format!(
                "subscription '{id}' references unknown channel '{}'",
                meta.channel
            ))
        })?;
        let mut config = SessionWorkerConfig::new(&id, &meta.sql, schema);
        config.queue_depth = shared.config.queue_depth;
        config.poll_interval = shared.config.poll_interval;
        config.stream.exec.engine = shared.config.engine;
        config.stream.exec.governor = shared.config.governor.clone();
        config.stream.exec.instrument = Instrument::profiling();
        config.resume_from = Some(checkpoint);
        if shared.config.shared_matcher.enabled() {
            // The alignment key: the channel row ordinal the session's
            // record 0 maps to.  It is invariant across checkpoints, so a
            // recovered subscription shares with exactly the peers it
            // could have shared with before the crash.
            if let Some(origin) = meta.base_rows.checked_sub(meta.base_records) {
                config.shared = Some(SharedSpec {
                    registry: Arc::clone(&registry),
                    origin,
                });
            }
        }
        let worker = SessionWorker::spawn(config).map_err(|e| recover_worker_err(&id, &e))?;
        let (_, records) = worker
            .snapshot_with_records()
            .map_err(|e| recover_worker_err(&id, &e))?;
        resume_at.insert(
            id.clone(),
            meta.base_rows + records.saturating_sub(meta.base_records),
        );
        let mut subs = shared
            .subs
            .lock()
            .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
        subs.insert(
            id,
            Subscription {
                worker: Arc::new(worker),
                channel: meta.channel,
                conn: 0,
                base_rows: meta.base_rows,
                base_records: meta.base_records,
            },
        );
        report.subscriptions += 1;
        ServerMetrics::inc(&shared.metrics.recovered_subscriptions_total);
    }
    // Replay each channel's surviving WAL rows into its workers.
    let channels: Vec<(String, Channel)> = shared
        .channels
        .lock()
        .map_err(|_| ServeError::Runtime("lock poisoned".into()))?
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for (name, channel) in channels {
        let frames = frames_by_channel.remove(&name).unwrap_or_default();
        let members: Vec<(String, Arc<SessionWorker>)> = {
            let subs = shared
                .subs
                .lock()
                .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
            subs.iter()
                .filter(|(_, s)| s.channel == name)
                .map(|(id, s)| (id.clone(), Arc::clone(&s.worker)))
                .collect()
        };
        let mut replay_subs: Vec<ReplaySub<'_>> = members
            .iter()
            .map(|(id, worker)| ReplaySub {
                id,
                resume_ordinal: resume_at.get(id).copied().unwrap_or(0),
                worker,
            })
            .collect();
        let stats = replay_channel(&name, &channel.schema, &frames, &mut replay_subs)?;
        drop(replay_subs);
        report.rows_replayed += stats.rows_replayed;
        report.rows_rejected += stats.rows_rejected;
        ServerMetrics::add(
            &shared.metrics.rows_fed_total,
            stats.rows_replayed + stats.rows_rejected,
        );
        if let Ok(mut persist) = channel.persist.lock() {
            snapshot_channel_locked(shared, &name, &mut persist, 0);
        }
    }
    Ok(report)
}

fn recover_worker_err(id: &str, e: &WorkerError) -> ServeError {
    let msg = format!("respawn subscription '{id}': {e}");
    if e.exit_code() == 3 {
        ServeError::Input(msg)
    } else {
        ServeError::Runtime(msg)
    }
}

/// Finish (and retain profiles of) every subscription the closed
/// connection owned, releasing their worker threads and budgets.
/// Recovered subscriptions belong to connection 0 and are never reaped.
fn reap_connection(shared: &Shared, conn: u64) {
    if shared.draining.load(Ordering::SeqCst) {
        // Not a client disconnect: the drain shut this socket down after
        // snapshotting, and the subscription must survive the restart.
        return;
    }
    let orphans: Vec<(String, Subscription)> = {
        let Ok(mut subs) = shared.subs.lock() else {
            return;
        };
        let ids: Vec<String> = subs
            .iter()
            .filter(|(_, s)| s.conn == conn)
            .map(|(id, _)| id.clone())
            .collect();
        ids.into_iter()
            .filter_map(|id| subs.remove(&id).map(|s| (id, s)))
            .collect()
    };
    for (id, sub) in orphans {
        // Durable state first: a crash between the two leaves a finished
        // worker with no files, never files with no worker.
        if let Some(data) = shared.data.as_ref() {
            data.remove_sub(&id);
        }
        if let Ok(report) = sub.worker.finish() {
            if let Some(profile) = report.profile {
                shared.metrics.retain_profile(&id, profile);
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, conn: u64) -> io::Result<()> {
    // HTTP scrapers open with `GET `; everything else is the framed
    // protocol.  Peek so the protocol path sees every byte.  `peek`
    // never consumes, so every call must re-read from the front of the
    // socket buffer into the *whole* probe — peeking at an offset would
    // duplicate the stream's first bytes, not extend them.
    let mut probe = [0u8; 4];
    let mut seen = 0;
    loop {
        match stream.peek(&mut probe)? {
            0 => break,
            n if n >= probe.len() => {
                seen = probe.len();
                break;
            }
            n => {
                seen = n;
                // Fewer than 4 bytes buffered yet; a legitimate client's
                // first frame or request line is longer, so wait briefly
                // for the rest instead of busy-spinning on peek.
                if probe[..n] != b"GET "[..n] {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    if seen == probe.len() && probe == *b"GET " {
        return serve_http(shared, stream);
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let (event, decode_ns) = match read_frame_timed(&mut reader, shared.config.max_frame_bytes)
        {
            Ok(timed) => timed,
            Err(FrameFatal::Desync(why)) => {
                ServerMetrics::inc(&shared.metrics.errors_total);
                shared.span_event(
                    Level::Warn,
                    "frame_desync",
                    &[("conn", &conn.to_string()), ("why", &why)],
                );
                let _ = write_frame(&mut writer, &format!("ERR 2 frame desync: {why}"));
                return Ok(());
            }
            Err(FrameFatal::Io(e)) => return Err(e),
        };
        if !matches!(event, FrameEvent::Eof) {
            shared
                .metrics
                .latency
                .record_ns(LatencyOp::FrameDecode, decode_ns);
        }
        ServerMetrics::inc(&shared.metrics.frames_total);
        let dispatched = Instant::now();
        let reply = match event {
            FrameEvent::Eof => return Ok(()),
            FrameEvent::Oversized { len } => Err(format!(
                "ERR 2 frame of {len} bytes exceeds limit {}",
                shared.config.max_frame_bytes
            )),
            FrameEvent::BadUtf8 => Err("ERR 2 frame payload is not UTF-8".into()),
            FrameEvent::Payload(payload) => dispatch(shared, conn, &payload),
        };
        if let Some(limit_ms) = shared.config.slow_frame_ms {
            // Decode + dispatch only — the idle wait for a frame to start
            // is the client's think time (the decoder's clock starts at
            // the first header byte for the same reason).
            let busy_ns = decode_ns.saturating_add(dispatched.elapsed().as_nanos() as u64);
            let busy_ms = busy_ns / 1_000_000;
            if busy_ms > limit_ms {
                shared.span_event(
                    Level::Warn,
                    "slow_frame",
                    &[
                        ("conn", &conn.to_string()),
                        ("ms", &busy_ms.to_string()),
                        ("limit_ms", &limit_ms.to_string()),
                    ],
                );
            }
        }
        match reply {
            Ok(text) => write_frame(&mut writer, &text)?,
            Err(text) => {
                ServerMetrics::inc(&shared.metrics.errors_total);
                write_frame(&mut writer, &text)?;
            }
        }
    }
}

fn err(code: u8, msg: impl std::fmt::Display) -> String {
    format!("ERR {code} {msg}")
}

fn worker_err(e: &WorkerError) -> String {
    err(e.exit_code(), e)
}

fn serve_err(e: &ServeError) -> String {
    err(e.exit_code(), e.message())
}

/// Short machine-readable name for a trip cause (`STATUS` replies).
fn trip_name(reason: TripReason) -> &'static str {
    match reason {
        TripReason::Deadline => "deadline",
        TripReason::StepBudget => "steps",
        TripReason::MatchBudget => "matches",
        TripReason::Cancelled => "cancelled",
    }
}

/// Handle one decoded request payload; `Ok` and `Err` are both reply
/// payloads, `Err` marking it for the error counter.  Each dispatch is
/// one root span in the span log; sub-operation spans (WAL append,
/// fan-out, snapshot) nest under it.
fn dispatch(shared: &Shared, conn: u64, payload: &str) -> Result<String, String> {
    let (head, body) = match payload.split_once('\n') {
        Some((head, body)) => (head, body),
        None => (payload, ""),
    };
    let mut words = head.split_whitespace();
    let verb = words.next().unwrap_or("");
    let args: Vec<&str> = words.collect();
    let conn_s = conn.to_string();
    let span = shared.span_begin(
        Level::Debug,
        "dispatch",
        0,
        &[("verb", verb), ("conn", &conn_s)],
    );
    let reply = match (verb, args.as_slice()) {
        ("PING", []) => Ok("OK pong".into()),
        ("OPEN", [chan, spec]) => open_channel(shared, chan, spec),
        ("SUBSCRIBE", [id, chan]) => subscribe(shared, conn, id, chan, body, None),
        ("RESUME", [id, chan]) => match body.split_once('\n') {
            Some((sql, checkpoint)) => {
                subscribe(shared, conn, id, chan, sql, Some(checkpoint.to_string()))
            }
            None => Err(err(2, "RESUME needs an SQL line and checkpoint text")),
        },
        ("FEED", [chan]) => feed(shared, chan, body, span),
        ("STATUS", [id]) => status(shared, id),
        ("CHECKPOINT", [id]) => checkpoint(shared, id),
        ("UNSUBSCRIBE", [id]) => unsubscribe(shared, id),
        ("", _) => Err(err(2, "empty frame")),
        (verb, _) => Err(err(
            2,
            format!(
                "unknown or malformed command '{verb}' (args: {})",
                args.len()
            ),
        )),
    };
    shared.span_end(
        Level::Debug,
        "dispatch",
        span,
        &[("ok", if reply.is_ok() { "1" } else { "0" })],
    );
    reply
}

pub(crate) fn parse_schema_spec(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("bad schema entry '{part}' (want name:type)"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "str" | "string" | "varchar" | "text" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(format!("unknown column type '{other}'")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

fn open_channel(shared: &Shared, chan: &str, spec: &str) -> Result<String, String> {
    let schema = parse_schema_spec(spec).map_err(|e| err(2, e))?;
    let mut channels = shared
        .channels
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    let channel = match channels.get(chan) {
        Some(existing) if existing.schema == schema => existing.clone(),
        Some(_) => {
            return Err(err(
                2,
                format!("channel '{chan}' already open with a different schema"),
            ))
        }
        None => {
            let channel = Channel::new(schema);
            if let Some(data) = shared.data.as_ref() {
                // Schema file before WAL: a crash in between leaves a
                // channel recovery re-creates with an empty WAL, never a
                // WAL no recovery pass will ever look at.
                data.save_channel(chan, &channel.schema)
                    .map_err(|e| serve_err(&e))?;
                let (wal, scan) = ChannelWal::open(&data.wal_path(chan), shared.config.fsync)
                    .map_err(|e| serve_err(&ServeError::from(e)))?;
                let mut persist = channel
                    .persist
                    .lock()
                    .map_err(|_| err(4, "lock poisoned"))?;
                persist.rows_total = scan.rows_total;
                persist.wal = Some(wal);
            }
            channels.insert(chan.to_string(), channel.clone());
            channel
        }
    };
    if shared.data.is_some() {
        // The durable row count lets a crashed feeder resume idempotently
        // (skip rows below it).  Absent a data dir the reply keeps its
        // historical shape exactly.
        let rows = channel.persist.lock().map(|p| p.rows_total).unwrap_or(0);
        Ok(format!("OK opened {chan} rows={rows}"))
    } else {
        Ok(format!("OK opened {chan}"))
    }
}

fn subscribe(
    shared: &Shared,
    conn: u64,
    id: &str,
    chan: &str,
    sql: &str,
    resume_from: Option<String>,
) -> Result<String, String> {
    if sql.trim().is_empty() {
        return Err(err(2, "missing SQL body"));
    }
    let channel = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(chan)
            .cloned()
            .ok_or_else(|| err(2, format!("unknown channel '{chan}' (OPEN it first)")))?
    };
    {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        if subs.contains_key(id) {
            return Err(err(2, format!("subscription id '{id}' is taken")));
        }
        if subs.len() >= shared.config.max_subscriptions {
            return Err(err(
                4,
                format!(
                    "admission: subscription limit {} reached",
                    shared.config.max_subscriptions
                ),
            ));
        }
    }
    let mut config = SessionWorkerConfig::new(id, sql, channel.schema.clone());
    config.queue_depth = shared.config.queue_depth;
    config.poll_interval = shared.config.poll_interval;
    config.stream.exec.engine = shared.config.engine;
    config.stream.exec.governor = shared.config.governor.clone();
    config.stream.exec.instrument = Instrument::profiling();
    let resumed = resume_from.is_some();
    config.resume_from = resume_from;
    // Hold the channel's persist lock across worker spawn, base-ordinal
    // read, registry insert and durable-file writes: no FEED can advance
    // the channel (or fan out to a half-registered subscription) in
    // between — which also pins the shared-matcher alignment origin to
    // the exact row ordinal this subscription starts observing from.
    let persist = channel
        .persist
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    if shared.config.shared_matcher.enabled() {
        let origin = match &config.resume_from {
            None => Some(persist.rows_total),
            // A resumed subscription's record 0 maps `cp.records()` rows
            // before the current channel ordinal; a checkpoint claiming
            // more records than the channel has rows is aligned with
            // nothing here and simply runs solo.
            Some(text) => SessionCheckpoint::from_text(text)
                .ok()
                .and_then(|cp| persist.rows_total.checked_sub(cp.records())),
        };
        if let Some(origin) = origin {
            config.shared = Some(SharedSpec {
                registry: Arc::clone(&channel.registry),
                origin,
            });
        }
    }
    let worker = Arc::new(SessionWorker::spawn(config).map_err(|e| worker_err(&e))?);
    let durable = if shared.data.is_some() {
        let (text, records) = worker.snapshot_with_records().map_err(|e| worker_err(&e))?;
        Some((persist.rows_total, records, text))
    } else {
        None
    };
    {
        let mut subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        // Re-check under the lock: another connection may have raced us.
        if subs.contains_key(id) {
            return Err(err(2, format!("subscription id '{id}' is taken")));
        }
        if subs.len() >= shared.config.max_subscriptions {
            return Err(err(4, "admission: subscription limit reached"));
        }
        let (base_rows, base_records) = durable
            .as_ref()
            .map_or((0, 0), |(rows, records, _)| (*rows, *records));
        subs.insert(
            id.to_string(),
            Subscription {
                worker: Arc::clone(&worker),
                channel: chan.to_string(),
                conn,
                base_rows,
                base_records,
            },
        );
    }
    if let (Some(data), Some((base_rows, base_records, text))) = (shared.data.as_ref(), durable) {
        let meta = SubMeta {
            channel: chan.to_string(),
            base_rows,
            base_records,
            sql: sql.to_string(),
        };
        let saved = data
            .save_sub_meta(id, &meta)
            .and_then(|()| data.save_sub_checkpoint(id, &text));
        if let Err(e) = saved {
            // An unpersistable subscription must not run: roll it back so
            // the client's view matches the durable state.
            data.remove_sub(id);
            if let Ok(mut subs) = shared.subs.lock() {
                subs.remove(id);
            }
            let _ = worker.finish();
            return Err(serve_err(&e));
        }
        ServerMetrics::inc(&shared.metrics.snapshots_total);
    }
    drop(persist);
    ServerMetrics::inc(&shared.metrics.subscriptions_total);
    let what = if resumed { "resumed" } else { "subscribed" };
    Ok(format!("OK {what} {id} {chan}"))
}

fn feed(shared: &Shared, chan: &str, body: &str, parent: u64) -> Result<String, String> {
    let channel = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(chan)
            .cloned()
            .ok_or_else(|| err(2, format!("unknown channel '{chan}'")))?
    };
    // Parse the whole frame before feeding anything: a malformed row
    // rejects the frame atomically instead of leaving subscribers halfway
    // through it.
    let mut rows = Vec::new();
    let mut lines = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        rows.push(parse_headerless_row(&channel.schema, line, i + 1).map_err(|e| err(3, e))?);
        lines.push(line);
    }
    // The channel persist lock is held across append, fan-out and
    // snapshot: WAL order is feed order, and the durable copy lands
    // before any subscriber sees a row.
    let mut persist = channel
        .persist
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    if !rows.is_empty() {
        if let Some(wal) = persist.wal.as_mut() {
            let span = shared.span_begin(
                Level::Debug,
                "wal_append",
                parent,
                &[("channel", chan), ("rows", &rows.len().to_string())],
            );
            let append_started = Instant::now();
            let appended = wal.append(&lines.join("\n"), rows.len() as u32);
            let append_ns = append_started.elapsed().as_nanos() as u64;
            // The fsync (when the policy took one) is inside append's
            // wall time; split it out so the two histograms answer
            // different questions.
            let fsync_ns = wal.take_fsync_ns();
            shared
                .metrics
                .latency
                .record_ns(LatencyOp::WalAppend, append_ns.saturating_sub(fsync_ns));
            match appended {
                Ok(synced) => {
                    ServerMetrics::inc(&shared.metrics.wal_appends_total);
                    if synced {
                        ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                        shared.metrics.latency.record_ns(LatencyOp::Fsync, fsync_ns);
                        shared.span_event(
                            Level::Debug,
                            "fsync",
                            &[("channel", chan), ("ns", &fsync_ns.to_string())],
                        );
                    }
                    shared.span_end(Level::Debug, "wal_append", span, &[]);
                }
                Err(e) => {
                    shared.span_end(
                        Level::Debug,
                        "wal_append",
                        span,
                        &[("error", &e.to_string())],
                    );
                    return Err(err(4, format!("wal append on '{chan}': {e}")));
                }
            }
        }
        persist.rows_total += rows.len() as u64;
    }
    let workers: Vec<(String, Arc<SessionWorker>)> = {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        subs.iter()
            .filter(|(_, s)| s.channel == chan)
            .map(|(id, s)| (id.clone(), Arc::clone(&s.worker)))
            .collect()
    };
    let fanout_span = shared.span_begin(
        Level::Debug,
        "fanout",
        parent,
        &[
            ("channel", chan),
            ("rows", &rows.len().to_string()),
            ("subs", &workers.len().to_string()),
        ],
    );
    let fanout_started = Instant::now();
    let mut tripped = 0u64;
    let mut rejecting: HashSet<&str> = HashSet::new();
    for row in &rows {
        for (id, worker) in &workers {
            match worker.feed(row.clone()) {
                Ok(()) => {}
                // A governed/overflowed subscription stays latched; its
                // partial result is delivered at UNSUBSCRIBE.  The feed
                // keeps flowing to the healthy subscriptions.
                Err(_) => {
                    tripped += 1;
                    rejecting.insert(id);
                }
            }
        }
    }
    shared.metrics.latency.record_ns(
        LatencyOp::Fanout,
        fanout_started.elapsed().as_nanos() as u64,
    );
    shared.span_end(
        Level::Debug,
        "fanout",
        fanout_span,
        &[("rejected", &tripped.to_string())],
    );
    ServerMetrics::add(
        &shared.metrics.rows_fed_total,
        rows.len() as u64 * workers.len() as u64,
    );
    // First trip of each subscription is a warn-level event (durable or
    // not); repeat rejections from an already-latched subscription are
    // steady state and stay quiet.
    let newly: Vec<String> = rejecting
        .iter()
        .filter(|id| !persist.tripped_seen.contains(**id))
        .map(|s| s.to_string())
        .collect();
    for id in &newly {
        shared.span_event(
            Level::Warn,
            "governor_trip",
            &[("sub", id), ("channel", chan)],
        );
    }
    let fresh_trip = !newly.is_empty();
    persist.tripped_seen.extend(newly);
    if persist.wal.is_some() && !rows.is_empty() {
        persist.frames_since_snapshot += 1;
        if fresh_trip
            || persist.frames_since_snapshot >= shared.config.checkpoint_every_frames.max(1)
        {
            snapshot_channel_locked(shared, chan, &mut persist, parent);
        }
    }
    Ok(format!(
        "OK fed {} subs={} rejected={tripped}",
        rows.len(),
        workers.len()
    ))
}

/// Snapshot every subscription on `chan` (atomic tmp+rename each), then
/// truncate the WAL below the low-water mark — the minimum ordinal any
/// snapshot still needs.  Caller holds the channel's persist lock.
/// Best-effort: a failure leaves the WAL longer than necessary, never
/// inconsistent.  `parent` nests the snapshot span under the operation
/// that forced it (0 for a top-level snapshot).
fn snapshot_channel_locked(shared: &Shared, chan: &str, persist: &mut ChannelPersist, parent: u64) {
    persist.frames_since_snapshot = 0;
    let Some(data) = shared.data.as_ref() else {
        return;
    };
    let started = Instant::now();
    let span = shared.span_begin(Level::Debug, "snapshot", parent, &[("channel", chan)]);
    let members: Vec<(String, Arc<SessionWorker>, u64, u64)> = {
        let Ok(subs) = shared.subs.lock() else {
            shared.span_end(Level::Debug, "snapshot", span, &[("aborted", "poisoned")]);
            return;
        };
        subs.iter()
            .filter(|(_, s)| s.channel == chan)
            .map(|(id, s)| {
                (
                    id.clone(),
                    Arc::clone(&s.worker),
                    s.base_rows,
                    s.base_records,
                )
            })
            .collect()
    };
    let mut low_water = persist.rows_total;
    let mut hold_truncation = false;
    for (id, worker, base_rows, base_records) in &members {
        match worker.snapshot_with_records() {
            Ok((text, records)) => {
                if data.save_sub_checkpoint(id, &text).is_err() {
                    hold_truncation = true;
                    continue;
                }
                ServerMetrics::inc(&shared.metrics.snapshots_total);
                low_water = low_water.min(base_rows + records.saturating_sub(*base_records));
            }
            // A worker that cannot snapshot right now (finishing, dead)
            // keeps its WAL rows: skip truncation this round.
            Err(_) => hold_truncation = true,
        }
    }
    let mut truncated = false;
    if !hold_truncation {
        if let Some(wal) = persist.wal.as_mut() {
            if wal.sync().is_ok() {
                ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                if let Ok(true) = wal.truncate_below(low_water) {
                    ServerMetrics::inc(&shared.metrics.wal_truncations_total);
                    truncated = true;
                }
            }
            shared
                .metrics
                .latency
                .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
        }
    }
    shared
        .metrics
        .latency
        .record_ns(LatencyOp::Snapshot, started.elapsed().as_nanos() as u64);
    shared.span_end(
        Level::Debug,
        "snapshot",
        span,
        &[
            ("subscriptions", &members.len().to_string()),
            ("truncated", if truncated { "1" } else { "0" }),
        ],
    );
}

fn lookup(shared: &Shared, id: &str) -> Result<Arc<SessionWorker>, String> {
    let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
    subs.get(id)
        .map(|s| Arc::clone(&s.worker))
        .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))
}

fn status(shared: &Shared, id: &str) -> Result<String, String> {
    let worker = lookup(shared, id)?;
    let status = worker.status().map_err(|e| worker_err(&e))?;
    Ok(format!(
        "OK status records={} skipped={} quarantined={} window={} trip={} poisoned={}",
        status.records,
        status.skipped,
        status.quarantined,
        status.window_bytes,
        status.trip.map_or("none", |t| trip_name(t.reason)),
        u8::from(status.poisoned),
    ))
}

fn checkpoint(shared: &Shared, id: &str) -> Result<String, String> {
    let worker = lookup(shared, id)?;
    let text = worker.snapshot().map_err(|e| worker_err(&e))?;
    Ok(format!("CHECKPOINT {id}\n{text}"))
}

fn unsubscribe(shared: &Shared, id: &str) -> Result<String, String> {
    let sub = {
        let mut subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        subs.remove(id)
            .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))?
    };
    // Durable files go first: a crash between removal and finish delivers
    // nothing to this client, but can never resurrect an unsubscribed
    // query on restart.
    if let Some(data) = shared.data.as_ref() {
        data.remove_sub(id);
    }
    let report = sub.worker.finish().map_err(|e| worker_err(&e))?;
    // An unsubscribe that surfaces a trip, quarantine, or error is the
    // operator-visible outcome of a misbehaving tenant: warn.  A clean
    // finish is routine: info.
    let troubled = report.trip.is_some() || report.error.is_some() || report.quarantined > 0;
    shared.span_event(
        if troubled { Level::Warn } else { Level::Info },
        "unsubscribe",
        &[
            ("sub", id),
            ("channel", &sub.channel),
            ("rows", &report.rows.to_string()),
            ("quarantined", &report.quarantined.to_string()),
            (
                "trip",
                report.trip.as_ref().map_or("none", |t| trip_name(t.reason)),
            ),
        ],
    );
    if let Some(profile) = report.profile {
        shared.metrics.retain_profile(id, profile);
    }
    // Exit-style result code: 0 clean, 4 governed/runtime — partial CSV
    // rides along either way.
    let code = if report.error.is_some() || report.trip.is_some() {
        4
    } else {
        0
    };
    let mut head = format!("RESULT {id} {code} rows={}", report.rows);
    if let Some(trip) = &report.trip {
        head.push_str(&format!(" trip={}", trip_name(trip.reason)));
    }
    if let Some(error) = &report.error {
        head.push_str(&format!(
            " error={}",
            error.replace(char::is_whitespace, "_")
        ));
    }
    Ok(format!("{head}\n{}", report.csv))
}

/// Minimal HTTP/1.1 shim: `GET /metrics` serves the Prometheus
/// exposition, `GET /status` the live-state JSON document, everything
/// else 404s.  One request per connection.
///
/// The whole response — status line, headers, body — is assembled into
/// one buffer and sent with a single `write_all`, so a strict scraper
/// never observes a partial header block, and `Content-Length` is
/// always the byte length of exactly the body that follows.
fn serve_http(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients aren't reset mid-send.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status_line, content_type, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        let views = http_sub_views(shared);
        let live: Vec<String> = views
            .iter()
            .map(|v| live_gauges(&v.id, &v.status, v.queue_depth))
            .collect();
        let mut body = shared.metrics.render(&live);
        if shared.config.shared_matcher.enabled() {
            body.push_str(&patternset_exposition(shared, &views));
        }
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
    } else if path == "/status" || path.starts_with("/status?") {
        let subs = http_sub_views(shared);
        let draining = shared.draining.load(Ordering::SeqCst);
        (
            "200 OK",
            "application/json; charset=utf-8",
            status_json(&shared.metrics, &subs, draining),
        )
    } else {
        (
            "404 Not Found",
            "text/plain",
            "not found: only GET /metrics and GET /status are served\n".to_string(),
        )
    };
    let mut response = String::with_capacity(body.len() + 160);
    response.push_str("HTTP/1.1 ");
    response.push_str(status_line);
    response.push_str("\r\nContent-Type: ");
    response.push_str(content_type);
    response.push_str("\r\nContent-Length: ");
    response.push_str(&body.len().to_string());
    response.push_str("\r\nConnection: close\r\n\r\n");
    response.push_str(&body);
    let mut writer = stream;
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

/// Roll the per-channel shared pattern-set registries into one
/// Prometheus block.  Registries carry the compile shape and the memo
/// savings; the *logical* test total comes from the live sessions (solo
/// subscriptions included — their tests are all physically evaluated,
/// which is exactly what `tests_evaluated = logical - saved` charges).
fn patternset_exposition(shared: &Shared, views: &[SubStatusView]) -> String {
    let registries: Vec<Arc<SetRegistry>> = shared
        .channels
        .lock()
        .map(|channels| channels.values().map(|c| Arc::clone(&c.registry)).collect())
        .unwrap_or_default();
    let mut stats = PatternSetStats::default();
    for registry in registries {
        stats.absorb(&registry.stats());
    }
    stats.tests_logical = views.iter().map(|v| v.status.predicate_tests).sum();
    stats.tests_evaluated = stats.tests_logical.saturating_sub(stats.tests_saved);
    stats.to_prometheus()
}

/// Snapshot every live subscription's observable state for the HTTP
/// endpoints: status (records/skips/trip), queue depth, worker phase.
fn http_sub_views(shared: &Shared) -> Vec<SubStatusView> {
    let handles: Vec<(String, String, Arc<SessionWorker>)> = shared
        .subs
        .lock()
        .map(|subs| {
            subs.iter()
                .map(|(id, s)| (id.clone(), s.channel.clone(), Arc::clone(&s.worker)))
                .collect()
        })
        .unwrap_or_default();
    let mut views: Vec<SubStatusView> = handles
        .into_iter()
        .filter_map(|(id, channel, worker)| {
            worker.status().ok().map(|status| SubStatusView {
                id,
                channel,
                status,
                queue_depth: worker.queue_depth(),
                phase: worker.phase_tag().phase().as_str(),
            })
        })
        .collect();
    views.sort_by(|a, b| a.id.cmp(&b.id));
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn schema_spec_round_trip_and_errors() {
        let schema = parse_schema_spec("name:str,day:int,price:float").unwrap();
        assert_eq!(schema.arity(), 3);
        assert!(parse_schema_spec("name").is_err());
        assert!(parse_schema_spec("name:blob").is_err());
    }

    #[test]
    fn unknown_verbs_and_empty_frames_are_usage_errors() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        for payload in ["", "WHAT is this", "SUBSCRIBE onlyone", "OPEN q"] {
            let reply = dispatch(shared, 1, payload).unwrap_err();
            assert!(reply.starts_with("ERR 2 "), "{payload:?} -> {reply}");
        }
        assert_eq!(dispatch(shared, 1, "PING").unwrap(), "OK pong");
    }

    #[test]
    fn end_to_end_over_dispatch() {
        // Protocol-level round trip without sockets: open, subscribe,
        // feed, status, checkpoint, unsubscribe.
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        // Same schema is idempotent; different schema is rejected.
        dispatch(shared, 2, "OPEN q name:str,day:int,price:float").unwrap();
        assert!(dispatch(shared, 2, "OPEN q name:str").is_err());
        let sql = "SELECT X.name, Z.day AS day FROM q CLUSTER BY name SEQUENCE BY day \
                   AS (X, *Y, Z) WHERE Y.price > Y.previous.price \
                   AND Z.price < Z.previous.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s1 q\n{sql}")).unwrap();
        assert!(
            dispatch(shared, 1, &format!("SUBSCRIBE s1 q\n{sql}")).is_err(),
            "duplicate id must be rejected"
        );
        let mut body = String::new();
        for day in 0..40 {
            let wave = (day % 7) as f64;
            body.push_str(&format!("AAA,{day},{}\n", 100.0 + 3.0 * wave));
        }
        let reply = dispatch(shared, 1, &format!("FEED q\n{body}")).unwrap();
        assert!(reply.starts_with("OK fed 40 subs=1"), "{reply}");
        let status = dispatch(shared, 1, "STATUS s1").unwrap();
        assert!(status.contains("records=40"), "{status}");
        assert!(status.contains("trip=none"), "{status}");
        let cp = dispatch(shared, 1, "CHECKPOINT s1").unwrap();
        assert!(
            cp.starts_with("CHECKPOINT s1\nsqlts-checkpoint v1\n"),
            "{cp}"
        );
        let result = dispatch(shared, 1, "UNSUBSCRIBE s1").unwrap();
        let head = result.lines().next().unwrap();
        assert!(head.starts_with("RESULT s1 0 rows="), "{head}");
        assert!(result.contains("name,day\n"), "{result}");
        // Resume from the checkpoint under a new id and finish empty-handed
        // but cleanly (no further rows).
        let text = cp.strip_prefix("CHECKPOINT s1\n").unwrap();
        dispatch(shared, 1, &format!("RESUME s2 q\n{sql}\n{text}")).unwrap();
        let resumed = dispatch(shared, 1, "UNSUBSCRIBE s2").unwrap();
        assert!(resumed.lines().next().unwrap().starts_with("RESULT s2 0"));
    }

    #[test]
    fn admission_limit_is_enforced() {
        let config = ServerConfig {
            max_subscriptions: 1,
            ..ServerConfig::default()
        };
        let server = Server::bind(config).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE a q\n{sql}")).unwrap();
        let reply = dispatch(shared, 1, &format!("SUBSCRIBE b q\n{sql}")).unwrap_err();
        assert!(reply.starts_with("ERR 4 admission"), "{reply}");
        // Freeing the slot re-admits.
        dispatch(shared, 1, "UNSUBSCRIBE a").unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE b q\n{sql}")).unwrap();
    }

    #[test]
    fn feeds_are_channel_scoped() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN a name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, "OPEN b ticker:str,t:int,volume:float").unwrap();
        let sql_a = "SELECT X.name FROM a CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                     WHERE Z.price < X.price";
        let sql_b = "SELECT X.ticker FROM b CLUSTER BY ticker SEQUENCE BY t AS (X, Z) \
                     WHERE Z.volume < X.volume";
        dispatch(shared, 1, &format!("SUBSCRIBE sa a\n{sql_a}")).unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE sb b\n{sql_b}")).unwrap();
        // A feed on channel a must reach only a's subscription — b's has a
        // different schema and must never see these rows.
        let reply = dispatch(shared, 1, "FEED a\nIBM,1,50.0").unwrap();
        assert!(reply.starts_with("OK fed 1 subs=1"), "{reply}");
        let sb = dispatch(shared, 1, "STATUS sb").unwrap();
        assert!(sb.contains("records=0"), "{sb}");
    }

    #[test]
    fn shared_matcher_saves_tests_and_keeps_results_byte_identical() {
        let off = Server::bind(ServerConfig::default()).unwrap();
        let on = Server::bind(ServerConfig {
            shared_matcher: SharedMatcherMode::On,
            ..ServerConfig::default()
        })
        .unwrap();
        let sql = |i: usize| {
            format!(
                "SELECT X.name, Z.day AS day FROM q CLUSTER BY name SEQUENCE BY day \
                 AS (X, Y, Z) WHERE X.price > 95 AND Y.price > X.previous.price \
                 AND Z.price < {}",
                100 + i
            )
        };
        let mut body = String::new();
        for day in 0..50 {
            for name in ["AAA", "BBB"] {
                let price = 94 + ((day * 7 + name.len()) % 13);
                body.push_str(&format!("{name},{day},{price}\n"));
            }
        }
        for server in [&off, &on] {
            let shared = &server.shared;
            dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
            for i in 0..8 {
                dispatch(shared, 1, &format!("SUBSCRIBE s{i} q\n{}", sql(i))).unwrap();
            }
            dispatch(shared, 1, &format!("FEED q\n{body}")).unwrap();
        }
        // Scrape the shared server while the subscriptions are still live.
        let views = http_sub_views(&on.shared);
        let prom = patternset_exposition(&on.shared, &views);
        let metric = |name: &str| -> u64 {
            prom.lines()
                .find_map(|l| l.strip_prefix(&format!("{name} ")))
                .unwrap_or_else(|| panic!("missing {name} in:\n{prom}"))
                .parse()
                .unwrap()
        };
        assert!(metric("sqlts_patternset_tests_shared") > 0, "{prom}");
        assert!(
            metric("sqlts_patternset_tests_evaluated") < metric("sqlts_patternset_tests_logical"),
            "{prom}"
        );
        assert_eq!(metric("sqlts_patternset_queries"), 8, "{prom}");
        // Per-subscription results are byte-identical shared or not.
        for i in 0..8 {
            let solo = dispatch(&off.shared, 1, &format!("UNSUBSCRIBE s{i}")).unwrap();
            let shared = dispatch(&on.shared, 1, &format!("UNSUBSCRIBE s{i}")).unwrap();
            assert_eq!(solo, shared, "subscription s{i} diverged under sharing");
        }
    }

    #[test]
    fn bad_sql_and_bad_rows_map_to_input_codes() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let reply = dispatch(shared, 1, "SUBSCRIBE s q\nSELECT garbage FROM").unwrap_err();
        assert!(reply.starts_with("ERR 3 "), "{reply}");
        let reply = dispatch(shared, 1, "FEED q\nIBM,notaday,50").unwrap_err();
        assert!(reply.starts_with("ERR 3 "), "{reply}");
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    fn temp_data_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-server-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(root: &Path, every: u64) -> ServerConfig {
        ServerConfig {
            data_dir: Some(root.to_path_buf()),
            fsync: FsyncPolicy::Off,
            checkpoint_every_frames: every,
            ..ServerConfig::default()
        }
    }

    const KILL_SQL: &str = "SELECT X.name, Z.day AS day FROM q CLUSTER BY name \
                            SEQUENCE BY day AS (X, *Y, Z) \
                            WHERE Y.price > Y.previous.price \
                            AND Z.price < Z.previous.price";

    fn kill_frames() -> Vec<String> {
        (0..12)
            .map(|f| {
                let mut body = String::new();
                for r in 0..3 {
                    let day = f * 3 + r;
                    let wave = (day % 5) as f64;
                    body.push_str(&format!("AAA,{day},{}\n", 100.0 + 4.0 * wave));
                }
                body
            })
            .collect()
    }

    /// The tentpole acceptance in miniature: kill the server (drop it
    /// without drain, LOCK file left behind) after *every* possible
    /// frame prefix; the recovered run's final result must be
    /// byte-identical to an uninterrupted run every time.
    #[test]
    fn recovery_is_byte_identical_after_a_kill_at_every_frame_boundary() {
        let frames = kill_frames();
        // Reference: the uninterrupted, non-durable run.
        let reference = {
            let server = Server::bind(ServerConfig::default()).unwrap();
            let shared = &server.shared;
            dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
            dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
            for frame in &frames {
                dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
            }
            dispatch(shared, 1, "UNSUBSCRIBE s").unwrap()
        };
        assert!(reference.contains("\nname,day\n") || reference.contains(" rows="));
        for k in 0..=frames.len() {
            let root = temp_data_dir(&format!("kill{k}"));
            {
                let server = Server::bind(durable_config(&root, 3)).unwrap();
                let shared = &server.shared;
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
                dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
                for frame in &frames[..k] {
                    dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
                }
                // Simulated SIGKILL: the server object is dropped with no
                // drain — snapshots stay stale, the LOCK file stays put.
            }
            let server = Server::bind(durable_config(&root, 3)).unwrap();
            let shared = &server.shared;
            let report = server.recovery().expect("durable server reports recovery");
            assert_eq!(report.channels, 1, "kill@{k}");
            assert_eq!(report.subscriptions, 1, "kill@{k}");
            for frame in &frames[k..] {
                dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
            }
            let result = dispatch(shared, 1, "UNSUBSCRIBE s").unwrap();
            assert_eq!(result, reference, "kill after frame {k} diverged");
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn open_reply_reports_durable_rows_only_with_a_data_dir() {
        let root = temp_data_dir("openrows");
        {
            let server = Server::bind(durable_config(&root, 64)).unwrap();
            let shared = &server.shared;
            assert_eq!(
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
                "OK opened q rows=0"
            );
            dispatch(shared, 1, "FEED q\nAAA,1,10\nAAA,2,11").unwrap();
            // Re-OPEN reports the durable row count a crashed feeder
            // resumes from.
            assert_eq!(
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
                "OK opened q rows=2"
            );
        }
        // After a crash the count survives.
        let server = Server::bind(durable_config(&root, 64)).unwrap();
        assert_eq!(
            dispatch(&server.shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
            "OK opened q rows=2"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unsubscribe_deletes_durable_state_before_finishing() {
        let root = temp_data_dir("unsub");
        let server = Server::bind(durable_config(&root, 64)).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{sql}")).unwrap();
        let meta = root.join("subs").join("s.meta");
        assert!(meta.exists(), "subscription metadata persisted");
        dispatch(shared, 1, "UNSUBSCRIBE s").unwrap();
        assert!(!meta.exists(), "unsubscribe removes durable files");
        drop(server);
        // A restart must not resurrect the unsubscribed query.
        let server = Server::bind(durable_config(&root, 64)).unwrap();
        assert_eq!(server.recovery().unwrap().subscriptions, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_truncates_once_snapshots_pass_the_low_water_mark() {
        let root = temp_data_dir("lowwater");
        let server = Server::bind(durable_config(&root, 1)).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{sql}")).unwrap();
        for day in 0..6 {
            dispatch(shared, 1, &format!("FEED q\nAAA,{day},{}", 50 - day)).unwrap();
        }
        // checkpoint_every_frames=1: every feed snapshots and truncates,
        // so the WAL holds no frame that ends at or below the snapshot.
        let scan = crate::wal::scan_wal(&root.join("channels").join("q.wal")).unwrap();
        assert!(scan.frames.is_empty(), "all frames truncated: {scan:?}");
        assert_eq!(scan.rows_total, 6, "ordinal line survives truncation");
        assert!(shared.metrics.wal_truncations_total.load(Ordering::Relaxed) > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn second_bind_on_a_locked_data_dir_is_refused() {
        let root = temp_data_dir("locked");
        let first = Server::bind(durable_config(&root, 64)).unwrap();
        let second = Server::bind(durable_config(&root, 64));
        match second {
            Err(e) => {
                assert_eq!(e.exit_code(), 2, "{e}");
                assert!(e.message().contains("in use"), "{e}");
            }
            Ok(_) => panic!("second bind on a locked dir must fail"),
        }
        drop(first);
        Server::bind(durable_config(&root, 64)).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_listen_address_is_a_usage_error() {
        let config = ServerConfig {
            listen: "definitely:not:an:address".into(),
            ..ServerConfig::default()
        };
        match Server::bind(config) {
            Err(e) => assert_eq!(e.exit_code(), 2, "{e}"),
            Ok(_) => panic!("bad listen address must fail"),
        }
    }

    #[test]
    fn malformed_durable_state_is_an_input_error() {
        let root = temp_data_dir("malformed");
        {
            let server = Server::bind(durable_config(&root, 64)).unwrap();
            dispatch(&server.shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        }
        std::fs::write(root.join("channels").join("q.schema"), "not a schema").unwrap();
        match Server::bind(durable_config(&root, 64)) {
            Err(e) => assert_eq!(e.exit_code(), 3, "{e}"),
            Ok(_) => panic!("malformed schema file must fail recovery"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
