//! The TCP server: accept loop, per-connection protocol driver, shared
//! channel/subscription registries, and the `GET /metrics` HTTP shim.
//!
//! ## Protocol
//!
//! Every frame (see [`crate::frame`]) carries one request or one reply.
//! Request payloads are a verb line plus optional body lines:
//!
//! ```text
//! PING
//! OPEN <channel> <name:type,...>
//! SUBSCRIBE <sub-id> <channel>
//! <SQL-TS query ...>
//! RESUME <sub-id> <channel>
//! <SQL-TS query on one line>
//! <sqlts-checkpoint v1 text ...>
//! FEED <channel>
//! <csv row>
//! <csv row ...>
//! STATUS <sub-id>
//! CHECKPOINT <sub-id>
//! UNSUBSCRIBE <sub-id>
//! ```
//!
//! Replies are `OK ...`, `ERR <code> <message>` (codes mirror the CLI's
//! exit classes: 2 usage/protocol, 3 input, 4 runtime/governed/admission,
//! 5 quarantine), `CHECKPOINT <sub-id>` + checkpoint text, or
//! `RESULT <sub-id> <code>` + CSV — the latter carrying partial results
//! with code 4 when the subscription's governor tripped.
//!
//! ## Tenancy model
//!
//! A *channel* is a named, schema-typed input feed; any connection may
//! `FEED` it and every subscription on it sees the same tuples.  A
//! *subscription* is one standing query over one channel, owned by the
//! connection that created it: it runs on its own
//! [`SessionWorker`] thread with the server's default governor budgets,
//! a bounded command queue (admission control), and an idle-poll interval
//! that trips stalled tenants' wall-clock deadlines.  When a connection
//! closes, its subscriptions are finished and their profiles retained for
//! `/metrics`; a client that wants to survive a disconnect takes a
//! `CHECKPOINT` first and `RESUME`s on a new connection.
//!
//! ## Durability (`--data-dir`)
//!
//! With a data directory configured the server becomes crash-safe:
//!
//! * every accepted `FEED` frame is appended to the channel's WAL
//!   ([`crate::wal`]) *before* it fans out, under the channel's persist
//!   lock, so WAL order is exactly feed order;
//! * every subscription's checkpoint is snapshotted atomically every
//!   [`ServerConfig::checkpoint_every_frames`] frames and on fresh
//!   governor trips, and the minimum snapshot position (the low-water
//!   mark) truncates the WAL behind it;
//! * on restart [`Server::bind`] recovers: channels reopen, workers
//!   resume from their snapshots, and the WAL tail replays exactly the
//!   rows each worker has not seen — making output and metrics
//!   byte-identical to an uninterrupted run (see [`crate::recover`]);
//! * recovered subscriptions belong to connection 0, which never closes:
//!   they outlive their original client, and any connection may
//!   `STATUS`/`CHECKPOINT`/`UNSUBSCRIBE` them.
//!
//! Without `--data-dir` nothing below changes observably: no files, no
//! extra reply fields, identical wire traffic.

use crate::frame::{read_frame_timed, write_frame, FrameEvent, FrameFatal};
use crate::metrics::{
    live_gauges, repl_exposition, status_json, LatencyOp, ServerMetrics, SubStatusView,
};
use crate::profiler::SamplingProfiler;
use crate::recover::{encode_name, replay_channel, schema_spec, DataDir, ReplaySub, ServeError, SubMeta};
use crate::replicate::{
    self, parse_ack, parse_hello, parse_opened_rows, send_repl, ReplAck, ReplCmd, ReplSnapshot,
    Replicator,
};
use crate::wal::{crc32, ChannelWal, FsyncPolicy, GroupCommit, WalFrame};
use sqlts_core::{
    EngineKind, Governor, Instrument, SessionCheckpoint, SessionWorker, SessionWorkerConfig,
    SetRegistry, SharedSpec, TripReason, WorkerError,
};
use sqlts_relation::{parse_headerless_row, ColumnType, Schema};
use sqlts_trace::{Level, LogFormat, PatternSetStats, SpanLog};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Whether subscriptions on a channel share one pattern-set pass
/// (`--shared-matcher`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SharedMatcherMode {
    /// Every subscription runs its own matcher — prior releases' behaviour.
    #[default]
    Off,
    /// Subscriptions join their channel's shared pattern-set registry;
    /// queries with no shareable element still fall back to a solo pass.
    On,
    /// Same as `On` today: the registry already declines per query when
    /// nothing is shareable, which is the only fallback rule defined.
    Auto,
}

impl SharedMatcherMode {
    /// Parse a `--shared-matcher` flag value.
    pub fn parse(value: &str) -> Option<SharedMatcherMode> {
        match value {
            "off" => Some(SharedMatcherMode::Off),
            "on" => Some(SharedMatcherMode::On),
            "auto" => Some(SharedMatcherMode::Auto),
            _ => None,
        }
    }

    fn enabled(self) -> bool {
        self != SharedMatcherMode::Off
    }
}

/// Everything the server needs to stand up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub listen: String,
    /// Admission cap: maximum concurrently live subscriptions.
    pub max_subscriptions: usize,
    /// Per-subscription command-queue depth (backpressure bound).
    pub queue_depth: usize,
    /// Idle-poll interval for stalled-deadline reclamation.
    pub poll_interval: Duration,
    /// Largest accepted frame payload; larger frames are drained and
    /// answered with `ERR 2`.
    pub max_frame_bytes: usize,
    /// Default resource budgets applied to every subscription.
    pub governor: Governor,
    /// Engine for fresh subscriptions (resume adopts the checkpoint's).
    pub engine: EngineKind,
    /// How many finished subscription profiles `/metrics` retains.
    pub retain_profiles: usize,
    /// Durable state directory; `None` keeps the server fully in-memory
    /// with behaviour identical to previous releases.
    pub data_dir: Option<PathBuf>,
    /// When to fsync WAL appends (only meaningful with `data_dir`).
    pub fsync: FsyncPolicy,
    /// Snapshot every subscription on a channel after this many FEED
    /// frames (clamped to ≥ 1; only meaningful with `data_dir`).
    pub checkpoint_every_frames: u64,
    /// Structured span log destination (`--log`); `None` leaves the hot
    /// path with a single never-taken branch per record site.
    pub log_file: Option<PathBuf>,
    /// Span log encoding (`--log-format json|text`).
    pub log_format: LogFormat,
    /// Span log filter level (`--log-level error|warn|info|debug`).
    pub log_level: Level,
    /// Rotate the span log past this size (`--log-rotate-bytes`; 0
    /// disables rotation).
    pub log_rotate_bytes: u64,
    /// Warn about any frame whose decode+dispatch exceeds this many
    /// milliseconds (`--slow-frame-ms`); `None` disables the check.
    pub slow_frame_ms: Option<u64>,
    /// Collapsed-stack sampling-profile destination
    /// (`--sample-profile`); `None` runs no profiler thread.
    pub sample_profile: Option<PathBuf>,
    /// Profiler sample rate (`--sample-hz`, clamped to 1..=1000).
    pub sample_hz: u32,
    /// Shared pattern-set execution across a channel's subscriptions
    /// (`--shared-matcher on|off|auto`).
    pub shared_matcher: SharedMatcherMode,
    /// Segment roll threshold for channel WALs (`--wal-segment-bytes`).
    pub wal_segment_bytes: u64,
    /// Stream every committed WAL record to this `HOST:PORT` standby
    /// (`--replicate-to`; requires `data_dir`).
    pub replicate_to: Option<String>,
    /// FEED acknowledgement mode relative to standby shipping
    /// (`--repl-ack sync|async`).
    pub repl_ack: ReplAck,
    /// Run as a warm standby: accept only `REPL` traffic, `PROMOTE`,
    /// `PING`, `STATUS` and HTTP scrapes until promoted
    /// (`--standby`; requires `data_dir`).
    pub standby: bool,
    /// Self-promote when the primary's replication connection drops
    /// (`--promote-on-disconnect`; standby only).
    pub promote_on_disconnect: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_subscriptions: 64,
            queue_depth: 16,
            poll_interval: Duration::from_millis(50),
            max_frame_bytes: 1 << 20,
            governor: Governor::unlimited(),
            engine: EngineKind::Ops,
            retain_profiles: 32,
            data_dir: None,
            fsync: FsyncPolicy::Every,
            checkpoint_every_frames: 64,
            log_file: None,
            log_format: LogFormat::Json,
            log_level: Level::Info,
            log_rotate_bytes: 0,
            slow_frame_ms: None,
            sample_profile: None,
            sample_hz: 99,
            shared_matcher: SharedMatcherMode::Off,
            wal_segment_bytes: crate::wal::DEFAULT_SEGMENT_BYTES,
            replicate_to: None,
            repl_ack: ReplAck::Async,
            standby: false,
            promote_on_disconnect: false,
        }
    }
}

struct Subscription {
    worker: Arc<SessionWorker>,
    channel: String,
    conn: u64,
    /// Channel row ordinal when this subscription joined (0 without a
    /// data dir, where it is never read).
    base_rows: u64,
    /// Worker checkpoint record count when it joined (non-zero only for
    /// RESUME and recovery).
    base_records: u64,
}

/// Per-channel durable state, guarded by one mutex so that WAL append
/// order is exactly fan-out order.  Lock ordering: a holder of this lock
/// may take the `subs` lock, never the reverse.
struct ChannelPersist {
    /// Rows accepted on this channel since it was opened (durable: the
    /// WAL's row count when one exists).
    rows_total: u64,
    /// The write-ahead log; `None` without a data dir.
    wal: Option<ChannelWal>,
    /// FEED frames since the last snapshot pass.
    frames_since_snapshot: u64,
    /// Subscription ids whose trip has already forced a snapshot, so a
    /// latched subscription does not snapshot the channel on every frame.
    tripped_seen: HashSet<String>,
}

#[derive(Clone)]
struct Channel {
    schema: Schema,
    persist: Arc<Mutex<ChannelPersist>>,
    /// The channel's shared pattern-set registry.  Always present (it is
    /// an empty `Vec` behind a mutex until someone joins); subscriptions
    /// only join it when [`ServerConfig::shared_matcher`] says so.
    registry: Arc<SetRegistry>,
    /// Group-commit coordinator for `--fsync group` (idle otherwise).
    group: Arc<GroupCommit>,
}

impl Channel {
    fn new(schema: Schema) -> Channel {
        Channel {
            schema,
            persist: Arc::new(Mutex::new(ChannelPersist {
                rows_total: 0,
                wal: None,
                frames_since_snapshot: 0,
                tripped_seen: HashSet::new(),
            })),
            registry: Arc::new(SetRegistry::new()),
            group: Arc::new(GroupCommit::default()),
        }
    }
}

struct Shared {
    config: ServerConfig,
    channels: Mutex<HashMap<String, Channel>>,
    subs: Mutex<HashMap<String, Subscription>>,
    metrics: ServerMetrics,
    next_conn: AtomicU64,
    /// The locked durable state directory, when configured.
    data: Option<DataDir>,
    /// Live client sockets, for the parting error at drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Set for the rest of the process's life once a drain begins.
    /// Connection reapers check it: the socket shutdowns drain sends wake
    /// every connection thread, and those must not mistake the drain for
    /// a client disconnect and delete durable state the drain just
    /// snapshotted.
    draining: AtomicBool,
    /// The armed structured span log, `None` when `--log` is absent.
    /// Every record site is `if let Some(log) = &shared.log` — one
    /// predictable branch when unarmed, exactly PR 3's discipline.
    log: Option<SpanLog>,
    /// True while this server is an unpromoted warm standby (starts as
    /// [`ServerConfig::standby`], cleared atomically by promotion).
    standby: AtomicBool,
    /// Promotion requested out-of-band (SIGUSR1 relay, primary
    /// disconnect); serviced by the accept loop.
    promote: AtomicBool,
    /// The primary-side replication handle, `None` without
    /// `--replicate-to`.
    repl: Option<Replicator>,
    /// On a standby: the connection id currently speaking `REPL` (0 =
    /// none), so its disconnect can trigger `--promote-on-disconnect`.
    repl_conn: AtomicU64,
}

impl Shared {
    /// Begin a span if the log is armed; 0 otherwise (and [`span_end`]
    /// of 0 is free).
    fn span_begin(&self, level: Level, name: &str, parent: u64, fields: &[(&str, &str)]) -> u64 {
        match &self.log {
            Some(log) => log.begin(level, name, parent, fields),
            None => 0,
        }
    }

    fn span_end(&self, level: Level, name: &str, id: u64, fields: &[(&str, &str)]) {
        if let Some(log) = &self.log {
            log.end(level, name, id, fields);
        }
    }

    fn span_event(&self, level: Level, name: &str, fields: &[(&str, &str)]) {
        if let Some(log) = &self.log {
            log.event(level, name, fields);
        }
    }
}

/// What a recovery pass restored, for startup diagnostics.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Channels reopened from the data dir.
    pub channels: usize,
    /// Subscriptions respawned from snapshots.
    pub subscriptions: usize,
    /// WAL row deliveries accepted during replay.
    pub rows_replayed: u64,
    /// WAL row deliveries rejected by latched workers during replay.
    pub rows_rejected: u64,
    /// Torn/corrupt WAL tail bytes discarded.
    pub dropped_bytes: u64,
    /// Human-readable notes (one per dropped tail).
    pub notes: Vec<String>,
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    recovery: Option<RecoveryReport>,
    /// The sampling profiler thread (`--sample-profile`); stopped (with
    /// a final flush) at drain, or on drop.
    profiler: Mutex<Option<SamplingProfiler>>,
    /// The replication shipping thread (`--replicate-to`); it holds only
    /// a [`Weak`] on [`Shared`] and is joined on drop so a dropped
    /// server releases its data dir promptly.
    repl_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(repl) = self.shared.repl.as_ref() {
            repl.shutdown();
        }
        if let Ok(mut slot) = self.repl_thread.lock() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Server {
    /// Bind the listen socket, lock the data dir and recover durable
    /// state (both only when `data_dir` is configured).  Every failure is
    /// a typed [`ServeError`] on the CLI's exit-code classes.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        if config.standby && config.data_dir.is_none() {
            return Err(ServeError::Usage("--standby requires --data-dir".into()));
        }
        if config.replicate_to.is_some() && config.data_dir.is_none() {
            return Err(ServeError::Usage(
                "--replicate-to requires --data-dir".into(),
            ));
        }
        if config.standby && config.replicate_to.is_some() {
            return Err(ServeError::Usage(
                "--standby and --replicate-to are mutually exclusive (chaining is not supported)"
                    .into(),
            ));
        }
        if config.standby && matches!(config.fsync, FsyncPolicy::Group { .. }) {
            // Group commit is driven by concurrent FEED threads; a standby
            // applies frames from one replication connection and would
            // never elect a leader.
            return Err(ServeError::Usage(
                "--standby does not support --fsync group; use every|batch|off".into(),
            ));
        }
        if config.promote_on_disconnect && !config.standby {
            return Err(ServeError::Usage(
                "--promote-on-disconnect requires --standby".into(),
            ));
        }
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| ServeError::Usage(format!("bind {}: {e}", config.listen)))?;
        let data = config
            .data_dir
            .as_ref()
            .map(|root| DataDir::lock(root))
            .transpose()?;
        let log = config
            .log_file
            .as_ref()
            .map(|path| {
                SpanLog::open(
                    path,
                    config.log_level,
                    config.log_format,
                    config.log_rotate_bytes,
                )
                .map_err(|e| ServeError::Usage(format!("open log {}: {e}", path.display())))
            })
            .transpose()?;
        let retain = config.retain_profiles;
        let (repl, repl_rx) = match config.replicate_to.clone() {
            Some(target) => {
                let (repl, rx) = Replicator::new(target, config.repl_ack);
                (Some(repl), Some(rx))
            }
            None => (None, None),
        };
        let standby = config.standby;
        let shared = Arc::new(Shared {
            config,
            channels: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::new(retain),
            next_conn: AtomicU64::new(1),
            data,
            conns: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            log,
            standby: AtomicBool::new(standby),
            promote: AtomicBool::new(false),
            repl,
            repl_conn: AtomicU64::new(0),
        });
        let recovery = if shared.data.is_some() {
            let span = shared.span_begin(Level::Warn, "recovery", 0, &[]);
            let report = recover(&shared)?;
            for note in &report.notes {
                shared.span_event(Level::Warn, "recovery_dropped_tail", &[("note", note)]);
            }
            shared.span_end(
                Level::Warn,
                "recovery",
                span,
                &[
                    ("channels", &report.channels.to_string()),
                    ("subscriptions", &report.subscriptions.to_string()),
                    ("rows_replayed", &report.rows_replayed.to_string()),
                    ("rows_rejected", &report.rows_rejected.to_string()),
                ],
            );
            Some(report)
        } else {
            None
        };
        let profiler = shared.config.sample_profile.clone().map(|path| {
            let registry = Arc::clone(&shared);
            SamplingProfiler::spawn(path, shared.config.sample_hz, move |out| {
                if let Ok(subs) = registry.subs.lock() {
                    for (id, sub) in subs.iter() {
                        out.push((id.clone(), sub.worker.phase_tag().phase().as_str()));
                    }
                }
            })
        });
        let repl_thread = repl_rx.and_then(|rx| {
            let repl = shared.repl.as_ref().expect("rx implies a replicator");
            let stop = Arc::clone(&repl.stop);
            let weak = Arc::downgrade(&shared);
            std::thread::Builder::new()
                .name("sqlts-repl".into())
                .spawn(move || replication_thread(&weak, &rx, &stop))
                .ok()
        });
        Ok(Server {
            listener,
            shared,
            recovery,
            profiler: Mutex::new(profiler),
            repl_thread: Mutex::new(repl_thread),
        })
    }

    /// A flag that, when set, makes the accept loop promote this standby
    /// (the CLI's SIGUSR1 relay sets it).  Setting it on a non-standby
    /// is a no-op beyond a logged failure.
    pub fn request_promotion(&self) {
        self.shared.promote.store(true, Ordering::SeqCst);
    }

    /// Whether this server is an unpromoted warm standby right now.
    pub fn is_standby(&self) -> bool {
        self.shared.standby.load(Ordering::SeqCst)
    }

    /// What recovery restored, when a data dir was configured.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The actually-bound address (resolves `:0`).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one thread per connection.
    pub fn run(&self) -> io::Result<()> {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.run_until(&NEVER)
    }

    /// Accept connections until `shutdown` becomes true, then drain
    /// gracefully: final snapshots, a parting `ERR 4` to every live
    /// client, the data-dir LOCK released, and a clean `Ok(())`.
    pub fn run_until(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                self.drain();
                return Ok(());
            }
            if self.shared.promote.swap(false, Ordering::SeqCst) {
                match promote_server(&self.shared) {
                    Ok(summary) => {
                        self.shared
                            .span_event(Level::Warn, "promoted", &[("summary", &summary)]);
                    }
                    Err(e) => {
                        self.shared
                            .span_event(Level::Warn, "promote_failed", &[("error", &e)]);
                    }
                }
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(false);
                    let shared = Arc::clone(&self.shared);
                    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    ServerMetrics::inc(&shared.metrics.connections_total);
                    shared.span_event(
                        Level::Info,
                        "accept",
                        &[("conn", &conn.to_string()), ("peer", &peer.to_string())],
                    );
                    if let Ok(clone) = stream.try_clone() {
                        if let Ok(mut conns) = shared.conns.lock() {
                            conns.insert(conn, clone);
                        }
                    }
                    let _ = std::thread::Builder::new()
                        .name(format!("sqlts-conn-{conn}"))
                        .spawn(move || {
                            let _ = handle_connection(&shared, stream, conn);
                            reap_connection(&shared, conn);
                            if let Ok(mut conns) = shared.conns.lock() {
                                conns.remove(&conn);
                            }
                            // Losing the primary's replication session is
                            // the failover trigger when the operator armed
                            // it.
                            let was_repl = shared
                                .repl_conn
                                .compare_exchange(conn, 0, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok();
                            if was_repl
                                && shared.config.promote_on_disconnect
                                && shared.standby.load(Ordering::SeqCst)
                                && !shared.draining.load(Ordering::SeqCst)
                            {
                                shared.span_event(
                                    Level::Warn,
                                    "primary_disconnected",
                                    &[("conn", &conn.to_string())],
                                );
                                shared.promote.store(true, Ordering::SeqCst);
                            }
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn drain(&self) {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        if let Some(repl) = shared.repl.as_ref() {
            // Stop shipping first: a drain must not block on standby acks.
            repl.shutdown();
        }
        let span = shared.span_begin(Level::Warn, "drain", 0, &[]);
        let channels: Vec<(String, Channel)> = shared
            .channels
            .lock()
            .map(|map| map.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default();
        for (name, channel) in channels {
            if let Ok(mut persist) = channel.persist.lock() {
                snapshot_channel_locked(shared, &name, &channel, &mut persist, span);
                if let Some(wal) = persist.wal.as_mut() {
                    if wal.sync().is_ok() {
                        ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                    }
                    shared
                        .metrics
                        .latency
                        .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
                }
            }
        }
        let parted = shared
            .conns
            .lock()
            .map(|mut conns| {
                let n = conns.len();
                for (_, mut stream) in conns.drain() {
                    let _ = write_frame(&mut stream, "ERR 4 server draining");
                    let _ = stream.shutdown(Shutdown::Both);
                }
                n
            })
            .unwrap_or(0);
        // Final flush before the LOCK release so a supervisor restarting
        // on drain-complete sees the whole profile.
        if let Ok(mut slot) = self.profiler.lock() {
            if let Some(profiler) = slot.take() {
                profiler.stop();
            }
        }
        if let Some(data) = shared.data.as_ref() {
            data.release();
        }
        shared.span_end(
            Level::Warn,
            "drain",
            span,
            &[("connections_parted", &parted.to_string())],
        );
        if let Some(log) = &shared.log {
            log.flush();
        }
    }
}

/// Rebuild channels, subscriptions and in-flight rows from a locked data
/// dir: reopen every channel's WAL (truncating torn tails), respawn every
/// subscription from its snapshot, replay the WAL rows each worker has
/// not yet seen, then snapshot everything so a crash loop cannot replay
/// unboundedly.
///
/// A `--standby` bind stops after the channel-open half: durable state is
/// live and appendable (the replication stream needs the WALs), but no
/// worker spawns until [`promote_server`] runs the second half.
fn recover(shared: &Shared) -> Result<RecoveryReport, ServeError> {
    let mut report = RecoveryReport::default();
    let frames_by_channel = open_durable_channels(shared, &mut report)?;
    if shared.config.standby {
        return Ok(report);
    }
    respawn_and_replay(shared, frames_by_channel, &mut report)?;
    Ok(report)
}

/// The channel half of recovery: reopen every channel's WAL (repairing
/// torn tails) and register it in the live channel map.  Returns each
/// channel's surviving frames for replay.
fn open_durable_channels(
    shared: &Shared,
    report: &mut RecoveryReport,
) -> Result<HashMap<String, Vec<WalFrame>>, ServeError> {
    let data = shared.data.as_ref().expect("recover requires a data dir");
    let mut frames_by_channel: HashMap<String, Vec<WalFrame>> = HashMap::new();
    let mut channels = shared
        .channels
        .lock()
        .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
    for (name, schema) in data.load_channels()? {
        let (mut wal, scan) = ChannelWal::open(&data.wal_path(&name), shared.config.fsync)?;
        wal.set_segment_bytes(shared.config.wal_segment_bytes);
        if scan.dropped_bytes > 0 {
            report.dropped_bytes += scan.dropped_bytes;
            report.notes.push(format!(
                "channel '{name}': dropped {} trailing wal bytes ({})",
                scan.dropped_bytes,
                scan.corruption
                    .as_deref()
                    .unwrap_or("unreported corruption")
            ));
        }
        frames_by_channel.insert(name.clone(), scan.frames);
        let channel = Channel {
            schema,
            persist: Arc::new(Mutex::new(ChannelPersist {
                rows_total: wal.rows_total(),
                wal: Some(wal),
                frames_since_snapshot: 0,
                tripped_seen: HashSet::new(),
            })),
            registry: Arc::new(SetRegistry::new()),
            group: Arc::new(GroupCommit::default()),
        };
        channels.insert(name, channel);
        report.channels += 1;
    }
    Ok(frames_by_channel)
}

/// The subscription half of recovery, shared with standby promotion:
/// respawn every persisted subscription from its snapshot and replay the
/// surviving WAL rows each worker has not yet seen.
fn respawn_and_replay(
    shared: &Shared,
    mut frames_by_channel: HashMap<String, Vec<WalFrame>>,
    report: &mut RecoveryReport,
) -> Result<(), ServeError> {
    let data = shared.data.as_ref().expect("recover requires a data dir");
    // Respawn each persisted subscription from its snapshot.  The resume
    // ordinal — the first channel row the worker has NOT seen — is the
    // join-time base plus the records its checkpoint gained since.
    let mut resume_at: HashMap<String, u64> = HashMap::new();
    for (id, meta, checkpoint) in data.load_subs()? {
        let (schema, registry) = {
            let channels = shared
                .channels
                .lock()
                .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
            channels
                .get(&meta.channel)
                .map(|c| (c.schema.clone(), Arc::clone(&c.registry)))
        }
        .ok_or_else(|| {
            ServeError::Input(format!(
                "subscription '{id}' references unknown channel '{}'",
                meta.channel
            ))
        })?;
        let mut config = SessionWorkerConfig::new(&id, &meta.sql, schema);
        config.queue_depth = shared.config.queue_depth;
        config.poll_interval = shared.config.poll_interval;
        config.stream.exec.engine = shared.config.engine;
        config.stream.exec.governor = shared.config.governor.clone();
        config.stream.exec.instrument = Instrument::profiling();
        config.resume_from = Some(checkpoint);
        if shared.config.shared_matcher.enabled() {
            // The alignment key: the channel row ordinal the session's
            // record 0 maps to.  It is invariant across checkpoints, so a
            // recovered subscription shares with exactly the peers it
            // could have shared with before the crash.
            if let Some(origin) = meta.base_rows.checked_sub(meta.base_records) {
                config.shared = Some(SharedSpec {
                    registry: Arc::clone(&registry),
                    origin,
                });
            }
        }
        let worker = SessionWorker::spawn(config).map_err(|e| recover_worker_err(&id, &e))?;
        let (_, records) = worker
            .snapshot_with_records()
            .map_err(|e| recover_worker_err(&id, &e))?;
        resume_at.insert(
            id.clone(),
            meta.base_rows + records.saturating_sub(meta.base_records),
        );
        let mut subs = shared
            .subs
            .lock()
            .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
        subs.insert(
            id,
            Subscription {
                worker: Arc::new(worker),
                channel: meta.channel,
                conn: 0,
                base_rows: meta.base_rows,
                base_records: meta.base_records,
            },
        );
        report.subscriptions += 1;
        ServerMetrics::inc(&shared.metrics.recovered_subscriptions_total);
    }
    // Replay each channel's surviving WAL rows into its workers.
    let channels: Vec<(String, Channel)> = shared
        .channels
        .lock()
        .map_err(|_| ServeError::Runtime("lock poisoned".into()))?
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for (name, channel) in channels {
        let frames = frames_by_channel.remove(&name).unwrap_or_default();
        let members: Vec<(String, Arc<SessionWorker>)> = {
            let subs = shared
                .subs
                .lock()
                .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
            subs.iter()
                .filter(|(_, s)| s.channel == name)
                .map(|(id, s)| (id.clone(), Arc::clone(&s.worker)))
                .collect()
        };
        let mut replay_subs: Vec<ReplaySub<'_>> = members
            .iter()
            .map(|(id, worker)| ReplaySub {
                id,
                resume_ordinal: resume_at.get(id).copied().unwrap_or(0),
                worker,
            })
            .collect();
        let stats = replay_channel(&name, &channel.schema, &frames, &mut replay_subs)?;
        drop(replay_subs);
        report.rows_replayed += stats.rows_replayed;
        report.rows_rejected += stats.rows_rejected;
        ServerMetrics::add(
            &shared.metrics.rows_fed_total,
            stats.rows_replayed + stats.rows_rejected,
        );
        if let Ok(mut persist) = channel.persist.lock() {
            snapshot_channel_locked(shared, &name, &channel, &mut persist, 0);
        }
    }
    Ok(())
}

/// Promote a warm standby into a full primary: flip the standby flag
/// (atomically — a second `PROMOTE` loses), sync and rescan every
/// channel WAL from disk, then run the subscription half of recovery.
/// Byte-identity with the dead primary follows from the WAL being the
/// same bytes the primary shipped, and recovery being the same machinery
/// a crashed primary restarts with.
fn promote_server(shared: &Shared) -> Result<String, String> {
    if shared
        .standby
        .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Err(err(2, "not a standby (already promoted?)"));
    }
    let span = shared.span_begin(Level::Warn, "promote", 0, &[]);
    let mut report = RecoveryReport::default();
    let result = (|| -> Result<(), ServeError> {
        let data = shared.data.as_ref().expect("standby has a data dir");
        let channels: Vec<(String, Channel)> = shared
            .channels
            .lock()
            .map_err(|_| ServeError::Runtime("lock poisoned".into()))?
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        report.channels = channels.len();
        let mut frames_by_channel: HashMap<String, Vec<WalFrame>> = HashMap::new();
        for (name, channel) in &channels {
            let mut persist = channel
                .persist
                .lock()
                .map_err(|_| ServeError::Runtime("lock poisoned".into()))?;
            if let Some(wal) = persist.wal.as_mut() {
                wal.sync()?;
            }
            // Rescan from disk: the standby never kept frames in memory.
            let scan = crate::wal::scan_wal(&data.wal_path(name))?;
            if scan.dropped_bytes > 0 {
                report.dropped_bytes += scan.dropped_bytes;
            }
            frames_by_channel.insert(name.clone(), scan.frames);
        }
        respawn_and_replay(shared, frames_by_channel, &mut report)
    })();
    match result {
        Ok(()) => {
            ServerMetrics::inc(&shared.metrics.repl_promotions_total);
            let summary = format!(
                "channels={} subscriptions={} rows_replayed={}",
                report.channels, report.subscriptions, report.rows_replayed
            );
            shared.span_end(Level::Warn, "promote", span, &[("summary", &summary)]);
            Ok(format!("OK promoted {summary}"))
        }
        Err(e) => {
            // Promotion is all-or-nothing: stay a standby so the operator
            // can retry (or resync from a new primary).
            shared.standby.store(true, Ordering::SeqCst);
            shared.span_end(Level::Warn, "promote", span, &[("error", e.message())]);
            Err(serve_err(&e))
        }
    }
}

/// Dispatch one standby-side `REPL` sub-verb (the head word `REPL` is
/// already stripped; `args` is the rest of the verb line).
fn repl_dispatch(shared: &Shared, conn: u64, args: &[&str], body: &str) -> Result<String, String> {
    match args {
        ["HELLO", "v1"] => standby_hello(shared, conn),
        ["HELLO", v] => Err(err(2, format!("unsupported replication protocol '{v}'"))),
        // Channel announcements reuse the ordinary open path: idempotent
        // for a matching schema, `ERR 2` on a schema clash.
        ["OPEN", chan, spec] => open_channel(shared, chan, spec),
        ["FRAME", chan, start, nrows, crc] => standby_frame(shared, chan, start, nrows, crc, body),
        ["META", id] => standby_meta(shared, id, body),
        ["CHECKPOINT", id] => standby_checkpoint(shared, id, body),
        ["REMOVE", id] => standby_remove(shared, id),
        ["SUBS", keep @ ..] => standby_subs(shared, keep),
        other => Err(err(2, format!("unknown REPL command {other:?}"))),
    }
}

/// `REPL HELLO v1`: adopt this connection as the replication session and
/// report every channel's durable row count so the primary can resync
/// exactly the frames this standby lacks.
fn standby_hello(shared: &Shared, conn: u64) -> Result<String, String> {
    shared.repl_conn.store(conn, Ordering::SeqCst);
    let channels = shared
        .channels
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    let mut reply = String::from("OK repl v1");
    for (name, channel) in channels.iter() {
        let rows = channel.persist.lock().map(|p| p.rows_total).unwrap_or(0);
        reply.push_str(&format!("\n{} {rows}", encode_name(name)));
    }
    Ok(reply)
}

/// `REPL FRAME <chan> <start> <nrows> <crc>` + payload: validate and
/// append one shipped WAL record.  Duplicates (frame end at or below the
/// durable row count — the overlap between a resync scan and the live
/// queue) are acknowledged without appending; anything else out of
/// sequence is a gap the primary answers with a fresh resync.
fn standby_frame(
    shared: &Shared,
    chan: &str,
    start: &str,
    nrows: &str,
    crc: &str,
    body: &str,
) -> Result<String, String> {
    let reject = |code: u8, msg: String| {
        ServerMetrics::inc(&shared.metrics.repl_rejected_frames_total);
        Err(err(code, msg))
    };
    let Ok(start) = start.parse::<u64>() else {
        return reject(2, format!("bad REPL FRAME start ordinal '{start}'"));
    };
    let Ok(nrows) = nrows.parse::<u32>() else {
        return reject(2, format!("bad REPL FRAME row count '{nrows}'"));
    };
    let Ok(crc) = u32::from_str_radix(crc, 16) else {
        return reject(2, format!("bad REPL FRAME crc '{crc}'"));
    };
    if crc32(body.as_bytes()) != crc {
        return reject(3, format!("repl frame crc mismatch on '{chan}'"));
    }
    let channel = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        match channels.get(chan).cloned() {
            Some(c) => c,
            None => return reject(2, format!("unknown channel '{chan}'")),
        }
    };
    // Validate the payload against the schema before touching the WAL:
    // the standby must never persist rows promotion cannot replay.
    let mut parsed = 0u32;
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            return reject(3, format!("repl frame has an empty row line on '{chan}'"));
        }
        if let Err(e) = parse_headerless_row(&channel.schema, line, i + 1) {
            return reject(3, e.to_string());
        }
        parsed += 1;
    }
    if parsed != nrows || nrows == 0 {
        return reject(
            3,
            format!("repl frame row count mismatch: header {nrows}, payload {parsed}"),
        );
    }
    let mut persist = channel
        .persist
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    #[cfg(feature = "failpoints")]
    if let Some(injected) = sqlts_relation::failpoints::hit("repl::standby_append", start) {
        if injected == sqlts_relation::failpoints::Injected::InjectError {
            return Err(err(4, "failpoint 'repl::standby_append' injected error"));
        }
    }
    let end = start + u64::from(nrows);
    if end <= persist.rows_total {
        return Ok(format!("OK repl ack {chan} {}", persist.rows_total));
    }
    if start != persist.rows_total {
        return reject(
            4,
            format!(
                "repl gap on '{chan}': frame starts at {start}, standby at {}",
                persist.rows_total
            ),
        );
    }
    let Some(wal) = persist.wal.as_mut() else {
        return Err(err(4, format!("channel '{chan}' has no wal on the standby")));
    };
    let synced = wal
        .append(body, nrows)
        .map_err(|e| err(4, format!("standby wal append on '{chan}': {e}")))?;
    ServerMetrics::inc(&shared.metrics.wal_appends_total);
    if synced {
        ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
        shared
            .metrics
            .latency
            .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
    }
    persist.rows_total = wal.rows_total();
    ServerMetrics::inc(&shared.metrics.repl_frames_received_total);
    Ok(format!("OK repl ack {chan} {}", persist.rows_total))
}

/// `REPL META <id>` + submeta text: persist a shipped subscription meta.
fn standby_meta(shared: &Shared, id: &str, body: &str) -> Result<String, String> {
    let meta = SubMeta::from_text(body).map_err(|e| err(3, format!("repl meta '{id}': {e}")))?;
    {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        if !channels.contains_key(&meta.channel) {
            return Err(err(
                4,
                format!("repl meta '{id}' references unknown channel '{}'", meta.channel),
            ));
        }
    }
    let data = shared.data.as_ref().expect("standby has a data dir");
    data.save_sub_meta(id, &meta).map_err(|e| serve_err(&e))?;
    Ok(format!("OK repl meta {id}"))
}

/// `REPL CHECKPOINT <id>` + checkpoint text: persist a shipped
/// subscription checkpoint, then truncate the channel's WAL below the
/// new low-water mark (the primary just did the same).
fn standby_checkpoint(shared: &Shared, id: &str, body: &str) -> Result<String, String> {
    SessionCheckpoint::from_text(body)
        .map_err(|e| err(3, format!("repl checkpoint '{id}': {e}")))?;
    let data = shared.data.as_ref().expect("standby has a data dir");
    let meta = data
        .load_sub_meta(id)
        .map_err(|e| serve_err(&e))?
        .ok_or_else(|| err(4, format!("repl checkpoint '{id}' has no shipped meta")))?;
    data.save_sub_checkpoint(id, body).map_err(|e| serve_err(&e))?;
    ServerMetrics::inc(&shared.metrics.snapshots_total);
    standby_truncate(shared, &meta.channel);
    Ok(format!("OK repl checkpoint {id}"))
}

/// Truncate a standby channel's WAL below the minimum resume ordinal of
/// its shipped checkpoints.  Best-effort, like the primary's snapshot
/// pass: a stale checkpoint only makes the low-water mark *lower*, never
/// wrong, and a subscription whose meta has not arrived yet can only
/// need rows at or above the current durable row count.
fn standby_truncate(shared: &Shared, chan: &str) {
    let Some(data) = shared.data.as_ref() else {
        return;
    };
    let Ok(subs) = data.load_subs() else {
        return;
    };
    let channel = {
        let Ok(channels) = shared.channels.lock() else {
            return;
        };
        match channels.get(chan).cloned() {
            Some(c) => c,
            None => return,
        }
    };
    let Ok(mut persist) = channel.persist.lock() else {
        return;
    };
    let mut low_water = persist.rows_total;
    for (_, meta, checkpoint) in &subs {
        if meta.channel != chan {
            continue;
        }
        let Ok(cp) = SessionCheckpoint::from_text(checkpoint) else {
            return; // unreadable checkpoint: hold truncation entirely
        };
        low_water = low_water.min(meta.base_rows + cp.records().saturating_sub(meta.base_records));
    }
    if let Some(wal) = persist.wal.as_mut() {
        if wal.sync().is_ok() {
            ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
            if let Ok(true) = wal.truncate_below(low_water) {
                ServerMetrics::inc(&shared.metrics.wal_truncations_total);
            }
        }
    }
}

/// `REPL REMOVE <id>`: drop a shipped subscription's durable files.
fn standby_remove(shared: &Shared, id: &str) -> Result<String, String> {
    let data = shared.data.as_ref().expect("standby has a data dir");
    data.remove_sub(id);
    Ok(format!("OK repl remove {id}"))
}

/// `REPL SUBS <id>...`: reconcile at resync — remove every durable
/// subscription the primary no longer has (its `REMOVE` may have been
/// shipped to a dead session).
fn standby_subs(shared: &Shared, keep: &[&str]) -> Result<String, String> {
    let data = shared.data.as_ref().expect("standby has a data dir");
    let keep: HashSet<&str> = keep.iter().copied().collect();
    let subs = data.load_subs().map_err(|e| serve_err(&e))?;
    for (id, _, _) in &subs {
        if !keep.contains(id.as_str()) {
            data.remove_sub(id);
        }
    }
    Ok(format!("OK repl subs {}", keep.len()))
}

/// Standby `STATUS <id>`: answered from the shipped durable state (no
/// worker exists until promotion).
fn standby_status(shared: &Shared, id: &str) -> Result<String, String> {
    let data = shared.data.as_ref().expect("standby has a data dir");
    let subs = data.load_subs().map_err(|e| serve_err(&e))?;
    let Some((_, meta, checkpoint)) = subs.iter().find(|(sid, _, _)| sid == id) else {
        return Err(err(2, format!("unknown subscription '{id}'")));
    };
    let records = SessionCheckpoint::from_text(checkpoint)
        .map(|cp| cp.records())
        .unwrap_or(0);
    let durable_rows = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(&meta.channel)
            .and_then(|c| c.persist.lock().ok().map(|p| p.rows_total))
            .unwrap_or(0)
    };
    Ok(format!(
        "OK status standby channel={} records={records} durable_rows={durable_rows}",
        meta.channel
    ))
}

/// How one shipping session ended.
enum SessionEnd {
    /// The stop flag is set (or the server is gone): exit the thread.
    Stop,
    /// The session failed: drain the stale queue, back off, resync.
    Retry,
}

/// The `--replicate-to` shipping thread: one session at a time, each a
/// connect + `HELLO` + full resync + live queue loop.  Holds only a
/// [`Weak`] on [`Shared`] between sessions so a dropped server is not
/// pinned by its own shipper ([`Server`]'s drop joins this thread).
fn replication_thread(
    weak: &Weak<Shared>,
    rx: &mpsc::Receiver<ReplCmd>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match replication_session(weak, rx, stop) {
            SessionEnd::Stop => return,
            SessionEnd::Retry => {
                // Anything still queued targeted the dead session; the
                // next resync re-reads the WAL instead.
                while rx.try_recv().is_ok() {}
                for _ in 0..10 {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
}

/// Count a session-fatal shipping error and flip to disconnected (waking
/// any sync-mode feeders so they degrade instead of timing out).
fn session_fail(shared: &Shared, what: &str, e: &str) {
    if let Some(repl) = shared.repl.as_ref() {
        repl.state.send_errors.fetch_add(1, Ordering::Relaxed);
        repl.state.mark_disconnected();
    }
    shared.span_event(Level::Warn, "repl_session_error", &[("what", what), ("error", e)]);
}

fn replication_session(
    weak: &Weak<Shared>,
    rx: &mpsc::Receiver<ReplCmd>,
    stop: &Arc<AtomicBool>,
) -> SessionEnd {
    let Some(shared) = weak.upgrade() else {
        return SessionEnd::Stop;
    };
    let repl = shared.repl.as_ref().expect("session implies a replicator");
    let target = repl.target.clone();
    let max_frame = shared.config.max_frame_bytes;
    // Connect with bounded timeouts.  Read timeouts are session-fatal by
    // design: a timeout mid-reply would desync the buffered reader, so
    // the session resets instead of continuing.
    let addrs: Vec<std::net::SocketAddr> = match target.to_socket_addrs() {
        Ok(addrs) => addrs.collect(),
        Err(e) => {
            session_fail(&shared, "resolve", &e.to_string());
            return SessionEnd::Retry;
        }
    };
    let mut stream = None;
    for addr in &addrs {
        if let Ok(s) = TcpStream::connect_timeout(addr, Duration::from_millis(500)) {
            stream = Some(s);
            break;
        }
    }
    let Some(mut stream) = stream else {
        session_fail(&shared, "connect", &format!("no address of '{target}' accepted"));
        return SessionEnd::Retry;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    let Ok(clone) = stream.try_clone() else {
        session_fail(&shared, "clone", "socket clone failed");
        return SessionEnd::Retry;
    };
    let mut reader = BufReader::new(clone);
    let standby_rows =
        match send_repl(&mut stream, &mut reader, "REPL HELLO v1", max_frame)
            .and_then(|r| parse_hello(&r))
        {
            Ok(rows) => rows,
            Err(e) => {
                session_fail(&shared, "hello", &e);
                return SessionEnd::Retry;
            }
        };
    repl.state.resyncs.fetch_add(1, Ordering::Relaxed);
    for (chan, rows) in &standby_rows {
        repl.state.note_ack(chan, *rows);
    }
    // Connected *before* the resync scan: live frames queue behind it,
    // and the overlap is absorbed by idempotent standby acks.
    repl.state.connected.store(true, Ordering::SeqCst);
    shared.span_event(Level::Info, "repl_connected", &[("target", &target)]);
    let fatal = |what: &str, e: &str| {
        session_fail(&shared, what, e);
        SessionEnd::Retry
    };
    let channels: Vec<(String, Channel)> = match shared.channels.lock() {
        Ok(map) => map.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        Err(_) => return fatal("channels", "lock poisoned"),
    };
    let data = shared.data.as_ref().expect("--replicate-to requires a data dir");
    for (name, channel) in &channels {
        let spec = schema_spec(&channel.schema);
        let opened = send_repl(
            &mut stream,
            &mut reader,
            &format!("REPL OPEN {name} {spec}"),
            max_frame,
        )
        .and_then(|r| parse_opened_rows(&r));
        match opened {
            Ok(rows) => repl.state.note_ack(name, rows),
            Err(e) => return fatal("open", &e),
        }
        // Ship every durable frame past the standby's watermark.  Read
        // from disk without the persist lock: appends are unbuffered
        // writes, the scan tolerates a torn in-flight tail, and any frame
        // it misses was offered to the live queue behind us.
        let acked = repl.state.acked(name);
        let frames = match crate::wal::read_frames_from(&data.wal_path(name), acked) {
            Ok(frames) => frames,
            Err(e) => return fatal("resync_scan", &e.to_string()),
        };
        for frame in &frames {
            if frame.end() <= repl.state.acked(name) {
                continue;
            }
            if let Err(e) = ship_frame(
                repl,
                &mut stream,
                &mut reader,
                max_frame,
                name,
                frame.start,
                frame.nrows,
                &frame.payload,
            ) {
                return fatal("resync_frame", &e);
            }
        }
    }
    // Reconcile durable subscription state, then ship every meta +
    // checkpoint (idempotent overwrites on the standby).
    let subs = match data.load_subs() {
        Ok(subs) => subs,
        Err(e) => return fatal("load_subs", e.message()),
    };
    let mut subs_line = String::from("REPL SUBS");
    for (id, _, _) in &subs {
        subs_line.push(' ');
        subs_line.push_str(id);
    }
    if let Err(e) = send_repl(&mut stream, &mut reader, &subs_line, max_frame) {
        return fatal("subs", &e);
    }
    for (id, meta, checkpoint) in &subs {
        let shipped = send_repl(
            &mut stream,
            &mut reader,
            &format!("REPL META {id}\n{}", meta.to_text()),
            max_frame,
        )
        .and_then(|_| {
            send_repl(
                &mut stream,
                &mut reader,
                &format!("REPL CHECKPOINT {id}\n{checkpoint}"),
                max_frame,
            )
        });
        if let Err(e) = shipped {
            return fatal("resync_sub", &e);
        }
    }
    // Live loop: drain the commit-ordered queue until stop or a fault.
    loop {
        if stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            repl.state.mark_disconnected();
            return SessionEnd::Stop;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(ReplCmd::Shutdown) => {
                repl.state.mark_disconnected();
                return SessionEnd::Stop;
            }
            Ok(cmd) => {
                if let Err(e) = ship_cmd(repl, &mut stream, &mut reader, max_frame, &cmd) {
                    return fatal("ship", &e);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                repl.state.mark_disconnected();
                return SessionEnd::Stop;
            }
        }
    }
}

/// Ship one queued replication command over the live session.
fn ship_cmd(
    repl: &Replicator,
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    max_frame: usize,
    cmd: &ReplCmd,
) -> Result<(), String> {
    match cmd {
        ReplCmd::Frame {
            channel,
            start,
            nrows,
            payload,
        } => {
            if start + u64::from(*nrows) <= repl.state.acked(channel) {
                return Ok(()); // the resync scan already covered it
            }
            ship_frame(
                repl, stream, reader, max_frame, channel, *start, *nrows, payload,
            )
        }
        ReplCmd::Open { channel, spec } => {
            let reply = send_repl(
                stream,
                reader,
                &format!("REPL OPEN {channel} {spec}"),
                max_frame,
            )?;
            repl.state.note_ack(channel, parse_opened_rows(&reply)?);
            Ok(())
        }
        ReplCmd::Meta { id, text } => {
            send_repl(stream, reader, &format!("REPL META {id}\n{text}"), max_frame).map(|_| ())
        }
        ReplCmd::Checkpoint { id, text } => send_repl(
            stream,
            reader,
            &format!("REPL CHECKPOINT {id}\n{text}"),
            max_frame,
        )
        .map(|_| ()),
        ReplCmd::Remove { id } => {
            send_repl(stream, reader, &format!("REPL REMOVE {id}"), max_frame).map(|_| ())
        }
        ReplCmd::Shutdown => Ok(()),
    }
}

/// Ship one WAL frame and record its ack watermark.
#[allow(clippy::too_many_arguments)]
fn ship_frame(
    repl: &Replicator,
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    max_frame: usize,
    channel: &str,
    start: u64,
    nrows: u32,
    payload: &str,
) -> Result<(), String> {
    let crc = crc32(payload.as_bytes());
    let reply = send_repl(
        stream,
        reader,
        &format!("REPL FRAME {channel} {start} {nrows} {crc:08x}\n{payload}"),
        max_frame,
    )?;
    repl.state.frames_sent.fetch_add(1, Ordering::Relaxed);
    let (chan, end) = parse_ack(&reply)?;
    if chan != channel {
        return Err(format!("ack for wrong channel: '{chan}' != '{channel}'"));
    }
    repl.state.acks.fetch_add(1, Ordering::Relaxed);
    repl.state.note_ack(channel, end);
    Ok(())
}

fn recover_worker_err(id: &str, e: &WorkerError) -> ServeError {
    let msg = format!("respawn subscription '{id}': {e}");
    if e.exit_code() == 3 {
        ServeError::Input(msg)
    } else {
        ServeError::Runtime(msg)
    }
}

/// Finish (and retain profiles of) every subscription the closed
/// connection owned, releasing their worker threads and budgets.
/// Recovered subscriptions belong to connection 0 and are never reaped.
fn reap_connection(shared: &Shared, conn: u64) {
    if shared.draining.load(Ordering::SeqCst) {
        // Not a client disconnect: the drain shut this socket down after
        // snapshotting, and the subscription must survive the restart.
        return;
    }
    let orphans: Vec<(String, Subscription)> = {
        let Ok(mut subs) = shared.subs.lock() else {
            return;
        };
        let ids: Vec<String> = subs
            .iter()
            .filter(|(_, s)| s.conn == conn)
            .map(|(id, _)| id.clone())
            .collect();
        ids.into_iter()
            .filter_map(|id| subs.remove(&id).map(|s| (id, s)))
            .collect()
    };
    for (id, sub) in orphans {
        // Durable state first: a crash between the two leaves a finished
        // worker with no files, never files with no worker.
        if let Some(data) = shared.data.as_ref() {
            data.remove_sub(&id);
            if let Some(repl) = shared.repl.as_ref() {
                repl.offer_remove(&id);
            }
        }
        if let Ok(report) = sub.worker.finish() {
            if let Some(profile) = report.profile {
                shared.metrics.retain_profile(&id, profile);
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, conn: u64) -> io::Result<()> {
    // HTTP scrapers open with `GET `; everything else is the framed
    // protocol.  Peek so the protocol path sees every byte.  `peek`
    // never consumes, so every call must re-read from the front of the
    // socket buffer into the *whole* probe — peeking at an offset would
    // duplicate the stream's first bytes, not extend them.
    let mut probe = [0u8; 4];
    let mut seen = 0;
    loop {
        match stream.peek(&mut probe)? {
            0 => break,
            n if n >= probe.len() => {
                seen = probe.len();
                break;
            }
            n => {
                seen = n;
                // Fewer than 4 bytes buffered yet; a legitimate client's
                // first frame or request line is longer, so wait briefly
                // for the rest instead of busy-spinning on peek.
                if probe[..n] != b"GET "[..n] {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    if seen == probe.len() && probe == *b"GET " {
        return serve_http(shared, stream);
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let (event, decode_ns) = match read_frame_timed(&mut reader, shared.config.max_frame_bytes)
        {
            Ok(timed) => timed,
            Err(FrameFatal::Desync(why)) => {
                ServerMetrics::inc(&shared.metrics.errors_total);
                shared.span_event(
                    Level::Warn,
                    "frame_desync",
                    &[("conn", &conn.to_string()), ("why", &why)],
                );
                let _ = write_frame(&mut writer, &format!("ERR 2 frame desync: {why}"));
                return Ok(());
            }
            Err(FrameFatal::Io(e)) => return Err(e),
        };
        if !matches!(event, FrameEvent::Eof) {
            shared
                .metrics
                .latency
                .record_ns(LatencyOp::FrameDecode, decode_ns);
        }
        ServerMetrics::inc(&shared.metrics.frames_total);
        let dispatched = Instant::now();
        let reply = match event {
            FrameEvent::Eof => return Ok(()),
            FrameEvent::Oversized { len } => Err(format!(
                "ERR 2 frame of {len} bytes exceeds limit {}",
                shared.config.max_frame_bytes
            )),
            FrameEvent::BadUtf8 => Err("ERR 2 frame payload is not UTF-8".into()),
            FrameEvent::Payload(payload) => dispatch(shared, conn, &payload),
        };
        if let Some(limit_ms) = shared.config.slow_frame_ms {
            // Decode + dispatch only — the idle wait for a frame to start
            // is the client's think time (the decoder's clock starts at
            // the first header byte for the same reason).
            let busy_ns = decode_ns.saturating_add(dispatched.elapsed().as_nanos() as u64);
            let busy_ms = busy_ns / 1_000_000;
            if busy_ms > limit_ms {
                shared.span_event(
                    Level::Warn,
                    "slow_frame",
                    &[
                        ("conn", &conn.to_string()),
                        ("ms", &busy_ms.to_string()),
                        ("limit_ms", &limit_ms.to_string()),
                    ],
                );
            }
        }
        match reply {
            Ok(text) => write_frame(&mut writer, &text)?,
            Err(text) => {
                ServerMetrics::inc(&shared.metrics.errors_total);
                write_frame(&mut writer, &text)?;
            }
        }
    }
}

fn err(code: u8, msg: impl std::fmt::Display) -> String {
    format!("ERR {code} {msg}")
}

fn worker_err(e: &WorkerError) -> String {
    err(e.exit_code(), e)
}

fn serve_err(e: &ServeError) -> String {
    err(e.exit_code(), e.message())
}

/// Short machine-readable name for a trip cause (`STATUS` replies).
fn trip_name(reason: TripReason) -> &'static str {
    match reason {
        TripReason::Deadline => "deadline",
        TripReason::StepBudget => "steps",
        TripReason::MatchBudget => "matches",
        TripReason::Cancelled => "cancelled",
    }
}

/// Handle one decoded request payload; `Ok` and `Err` are both reply
/// payloads, `Err` marking it for the error counter.  Each dispatch is
/// one root span in the span log; sub-operation spans (WAL append,
/// fan-out, snapshot) nest under it.
fn dispatch(shared: &Shared, conn: u64, payload: &str) -> Result<String, String> {
    let (head, body) = match payload.split_once('\n') {
        Some((head, body)) => (head, body),
        None => (payload, ""),
    };
    let mut words = head.split_whitespace();
    let verb = words.next().unwrap_or("");
    let args: Vec<&str> = words.collect();
    let conn_s = conn.to_string();
    let span = shared.span_begin(
        Level::Debug,
        "dispatch",
        0,
        &[("verb", verb), ("conn", &conn_s)],
    );
    // A warm standby accepts only the replication stream and read-only
    // probes; everything mutating is refused until PROMOTE so the two
    // ends of the stream cannot diverge.
    let reply = if shared.standby.load(Ordering::SeqCst) {
        match (verb, args.as_slice()) {
            ("PING", []) => Ok("OK pong".into()),
            ("REPL", rest) => repl_dispatch(shared, conn, rest, body),
            ("PROMOTE", []) => promote_server(shared),
            ("STATUS", [id]) => standby_status(shared, id),
            ("", _) => Err(err(2, "empty frame")),
            (verb, _) => Err(err(
                4,
                format!("standby is read-only; '{verb}' is not served until PROMOTE"),
            )),
        }
    } else {
        match (verb, args.as_slice()) {
            ("PING", []) => Ok("OK pong".into()),
            ("OPEN", [chan, spec]) => open_channel(shared, chan, spec),
            ("SUBSCRIBE", [id, chan]) => subscribe(shared, conn, id, chan, body, None),
            ("RESUME", [id, chan]) => match body.split_once('\n') {
                Some((sql, checkpoint)) => {
                    subscribe(shared, conn, id, chan, sql, Some(checkpoint.to_string()))
                }
                None => Err(err(2, "RESUME needs an SQL line and checkpoint text")),
            },
            ("FEED", [chan]) => feed(shared, chan, body, span),
            ("STATUS", [id]) => status(shared, id),
            ("CHECKPOINT", [id]) => checkpoint(shared, id),
            ("CHECKPOINT", [id, durable]) if durable.eq_ignore_ascii_case("DURABLE") => {
                checkpoint_durable(shared, id)
            }
            ("UNSUBSCRIBE", [id]) => unsubscribe(shared, id),
            ("PROMOTE", []) => Err(err(2, "not a standby")),
            ("REPL", _) => Err(err(2, "not a standby")),
            ("", _) => Err(err(2, "empty frame")),
            (verb, _) => Err(err(
                2,
                format!(
                    "unknown or malformed command '{verb}' (args: {})",
                    args.len()
                ),
            )),
        }
    };
    shared.span_end(
        Level::Debug,
        "dispatch",
        span,
        &[("ok", if reply.is_ok() { "1" } else { "0" })],
    );
    reply
}

pub(crate) fn parse_schema_spec(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("bad schema entry '{part}' (want name:type)"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "str" | "string" | "varchar" | "text" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(format!("unknown column type '{other}'")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

fn open_channel(shared: &Shared, chan: &str, spec: &str) -> Result<String, String> {
    let schema = parse_schema_spec(spec).map_err(|e| err(2, e))?;
    let mut channels = shared
        .channels
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    let channel = match channels.get(chan) {
        Some(existing) if existing.schema == schema => existing.clone(),
        Some(_) => {
            return Err(err(
                2,
                format!("channel '{chan}' already open with a different schema"),
            ))
        }
        None => {
            let channel = Channel::new(schema);
            if let Some(data) = shared.data.as_ref() {
                // Schema file before WAL: a crash in between leaves a
                // channel recovery re-creates with an empty WAL, never a
                // WAL no recovery pass will ever look at.
                data.save_channel(chan, &channel.schema)
                    .map_err(|e| serve_err(&e))?;
                let (mut wal, scan) = ChannelWal::open(&data.wal_path(chan), shared.config.fsync)
                    .map_err(|e| serve_err(&ServeError::from(e)))?;
                wal.set_segment_bytes(shared.config.wal_segment_bytes);
                let mut persist = channel
                    .persist
                    .lock()
                    .map_err(|_| err(4, "lock poisoned"))?;
                persist.rows_total = scan.rows_total;
                persist.wal = Some(wal);
                if let Some(repl) = shared.repl.as_ref() {
                    repl.offer_open(chan, &schema_spec(&channel.schema));
                }
            }
            channels.insert(chan.to_string(), channel.clone());
            channel
        }
    };
    if shared.data.is_some() {
        // The durable row count lets a crashed feeder resume idempotently
        // (skip rows below it).  Absent a data dir the reply keeps its
        // historical shape exactly.
        let rows = channel.persist.lock().map(|p| p.rows_total).unwrap_or(0);
        Ok(format!("OK opened {chan} rows={rows}"))
    } else {
        Ok(format!("OK opened {chan}"))
    }
}

fn subscribe(
    shared: &Shared,
    conn: u64,
    id: &str,
    chan: &str,
    sql: &str,
    resume_from: Option<String>,
) -> Result<String, String> {
    if sql.trim().is_empty() {
        return Err(err(2, "missing SQL body"));
    }
    let channel = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(chan)
            .cloned()
            .ok_or_else(|| err(2, format!("unknown channel '{chan}' (OPEN it first)")))?
    };
    {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        if subs.contains_key(id) {
            return Err(err(2, format!("subscription id '{id}' is taken")));
        }
        if subs.len() >= shared.config.max_subscriptions {
            return Err(err(
                4,
                format!(
                    "admission: subscription limit {} reached",
                    shared.config.max_subscriptions
                ),
            ));
        }
    }
    let mut config = SessionWorkerConfig::new(id, sql, channel.schema.clone());
    config.queue_depth = shared.config.queue_depth;
    config.poll_interval = shared.config.poll_interval;
    config.stream.exec.engine = shared.config.engine;
    config.stream.exec.governor = shared.config.governor.clone();
    config.stream.exec.instrument = Instrument::profiling();
    let resumed = resume_from.is_some();
    config.resume_from = resume_from;
    // Hold the channel's persist lock across worker spawn, base-ordinal
    // read, registry insert and durable-file writes: no FEED can advance
    // the channel (or fan out to a half-registered subscription) in
    // between — which also pins the shared-matcher alignment origin to
    // the exact row ordinal this subscription starts observing from.
    let persist = channel
        .persist
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    if shared.config.shared_matcher.enabled() {
        let origin = match &config.resume_from {
            None => Some(persist.rows_total),
            // A resumed subscription's record 0 maps `cp.records()` rows
            // before the current channel ordinal; a checkpoint claiming
            // more records than the channel has rows is aligned with
            // nothing here and simply runs solo.
            Some(text) => SessionCheckpoint::from_text(text)
                .ok()
                .and_then(|cp| persist.rows_total.checked_sub(cp.records())),
        };
        if let Some(origin) = origin {
            config.shared = Some(SharedSpec {
                registry: Arc::clone(&channel.registry),
                origin,
            });
        }
    }
    let worker = Arc::new(SessionWorker::spawn(config).map_err(|e| worker_err(&e))?);
    let durable = if shared.data.is_some() {
        let (text, records) = worker.snapshot_with_records().map_err(|e| worker_err(&e))?;
        Some((persist.rows_total, records, text))
    } else {
        None
    };
    {
        let mut subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        // Re-check under the lock: another connection may have raced us.
        if subs.contains_key(id) {
            return Err(err(2, format!("subscription id '{id}' is taken")));
        }
        if subs.len() >= shared.config.max_subscriptions {
            return Err(err(4, "admission: subscription limit reached"));
        }
        let (base_rows, base_records) = durable
            .as_ref()
            .map_or((0, 0), |(rows, records, _)| (*rows, *records));
        subs.insert(
            id.to_string(),
            Subscription {
                worker: Arc::clone(&worker),
                channel: chan.to_string(),
                conn,
                base_rows,
                base_records,
            },
        );
    }
    if let (Some(data), Some((base_rows, base_records, text))) = (shared.data.as_ref(), durable) {
        let meta = SubMeta {
            channel: chan.to_string(),
            base_rows,
            base_records,
            sql: sql.to_string(),
        };
        let saved = data
            .save_sub_meta(id, &meta)
            .and_then(|()| data.save_sub_checkpoint(id, &text));
        if let Err(e) = saved {
            // An unpersistable subscription must not run: roll it back so
            // the client's view matches the durable state.
            data.remove_sub(id);
            if let Ok(mut subs) = shared.subs.lock() {
                subs.remove(id);
            }
            let _ = worker.finish();
            return Err(serve_err(&e));
        }
        ServerMetrics::inc(&shared.metrics.snapshots_total);
        if let Some(repl) = shared.repl.as_ref() {
            // Still under the persist lock: the standby sees the meta
            // before any frame this subscription will be replayed over.
            repl.offer_meta(id, &meta.to_text());
            repl.offer_checkpoint(id, &text);
        }
    }
    drop(persist);
    ServerMetrics::inc(&shared.metrics.subscriptions_total);
    let what = if resumed { "resumed" } else { "subscribed" };
    Ok(format!("OK {what} {id} {chan}"))
}

fn feed(shared: &Shared, chan: &str, body: &str, parent: u64) -> Result<String, String> {
    let channel = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(chan)
            .cloned()
            .ok_or_else(|| err(2, format!("unknown channel '{chan}'")))?
    };
    // Parse the whole frame before feeding anything: a malformed row
    // rejects the frame atomically instead of leaving subscribers halfway
    // through it.
    let mut rows = Vec::new();
    let mut lines = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        rows.push(parse_headerless_row(&channel.schema, line, i + 1).map_err(|e| err(3, e))?);
        lines.push(line);
    }
    let payload_text = lines.join("\n");
    // The channel persist lock is held across append, fan-out and
    // snapshot: WAL order is feed order, and the durable copy lands
    // before any subscriber sees a row.
    let mut persist = channel
        .persist
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    let start_ordinal = persist.rows_total;
    let mut offered = false;
    if !rows.is_empty() {
        if let Some(wal) = persist.wal.as_mut() {
            let span = shared.span_begin(
                Level::Debug,
                "wal_append",
                parent,
                &[("channel", chan), ("rows", &rows.len().to_string())],
            );
            let append_started = Instant::now();
            let appended = wal.append(&payload_text, rows.len() as u32);
            let append_ns = append_started.elapsed().as_nanos() as u64;
            // The fsync (when the policy took one) is inside append's
            // wall time; split it out so the two histograms answer
            // different questions.
            let fsync_ns = wal.take_fsync_ns();
            shared
                .metrics
                .latency
                .record_ns(LatencyOp::WalAppend, append_ns.saturating_sub(fsync_ns));
            match appended {
                Ok(synced) => {
                    ServerMetrics::inc(&shared.metrics.wal_appends_total);
                    if synced {
                        ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                        shared.metrics.latency.record_ns(LatencyOp::Fsync, fsync_ns);
                        shared.span_event(
                            Level::Debug,
                            "fsync",
                            &[("channel", chan), ("ns", &fsync_ns.to_string())],
                        );
                    }
                    shared.span_end(Level::Debug, "wal_append", span, &[]);
                }
                Err(e) => {
                    shared.span_end(
                        Level::Debug,
                        "wal_append",
                        span,
                        &[("error", &e.to_string())],
                    );
                    return Err(err(4, format!("wal append on '{chan}': {e}")));
                }
            }
        }
        persist.rows_total += rows.len() as u64;
        if let Some(repl) = shared.repl.as_ref() {
            // Enqueued under the persist lock so the shipping queue is in
            // commit order.  While disconnected the offer is dropped: the
            // WAL is the source of truth and the next resync re-reads it.
            offered = repl.offer_frame(chan, start_ordinal, rows.len() as u32, &payload_text);
        }
    }
    let workers: Vec<(String, Arc<SessionWorker>)> = {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        subs.iter()
            .filter(|(_, s)| s.channel == chan)
            .map(|(id, s)| (id.clone(), Arc::clone(&s.worker)))
            .collect()
    };
    let fanout_span = shared.span_begin(
        Level::Debug,
        "fanout",
        parent,
        &[
            ("channel", chan),
            ("rows", &rows.len().to_string()),
            ("subs", &workers.len().to_string()),
        ],
    );
    let fanout_started = Instant::now();
    let mut tripped = 0u64;
    let mut rejecting: HashSet<&str> = HashSet::new();
    for row in &rows {
        for (id, worker) in &workers {
            match worker.feed(row.clone()) {
                Ok(()) => {}
                // A governed/overflowed subscription stays latched; its
                // partial result is delivered at UNSUBSCRIBE.  The feed
                // keeps flowing to the healthy subscriptions.
                Err(_) => {
                    tripped += 1;
                    rejecting.insert(id);
                }
            }
        }
    }
    shared.metrics.latency.record_ns(
        LatencyOp::Fanout,
        fanout_started.elapsed().as_nanos() as u64,
    );
    shared.span_end(
        Level::Debug,
        "fanout",
        fanout_span,
        &[("rejected", &tripped.to_string())],
    );
    ServerMetrics::add(
        &shared.metrics.rows_fed_total,
        rows.len() as u64 * workers.len() as u64,
    );
    // First trip of each subscription is a warn-level event (durable or
    // not); repeat rejections from an already-latched subscription are
    // steady state and stay quiet.
    let newly: Vec<String> = rejecting
        .iter()
        .filter(|id| !persist.tripped_seen.contains(**id))
        .map(|s| s.to_string())
        .collect();
    for id in &newly {
        shared.span_event(
            Level::Warn,
            "governor_trip",
            &[("sub", id), ("channel", chan)],
        );
    }
    let fresh_trip = !newly.is_empty();
    persist.tripped_seen.extend(newly);
    let has_wal = persist.wal.is_some();
    if has_wal && !rows.is_empty() {
        persist.frames_since_snapshot += 1;
        if fresh_trip
            || persist.frames_since_snapshot >= shared.config.checkpoint_every_frames.max(1)
        {
            snapshot_channel_locked(shared, chan, &channel, &mut persist, parent);
        }
    }
    let end_ordinal = persist.rows_total;
    drop(persist);
    // Group commit: the append above did not sync.  Wait (off-lock, so
    // concurrent FEEDs can pile their appends into the same batch) until
    // a leader's single fsync covers this frame's rows.
    if has_wal && !rows.is_empty() {
        if let FsyncPolicy::Group { window_us } = shared.config.fsync {
            let window = Duration::from_micros(u64::from(window_us));
            let group = Arc::clone(&channel.group);
            let outcome = group.wait_durable(end_ordinal, window, || {
                let mut persist = channel
                    .persist
                    .lock()
                    .map_err(|_| "lock poisoned".to_string())?;
                let Some(wal) = persist.wal.as_mut() else {
                    return Err("wal closed".into());
                };
                wal.sync().map_err(|e| e.to_string())?;
                ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                shared
                    .metrics
                    .latency
                    .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
                Ok(wal.rows_total())
            });
            if let Err(e) = outcome {
                // The rows were appended but are not durable; the feeder
                // must not treat them as accepted.  (Recovery truncates
                // or replays them consistently either way.)
                return Err(err(4, format!("group fsync on '{chan}': {e}")));
            }
        }
    }
    // Semi-synchronous replication: hold the ack until the standby has
    // the frame, degrading (counted) rather than failing the FEED when
    // the standby is away or slow.
    if !rows.is_empty() {
        if let Some(repl) = shared.repl.as_ref() {
            if repl.ack == ReplAck::Sync {
                let acked = offered
                    && repl
                        .state
                        .wait_acked(chan, end_ordinal, replicate::SYNC_ACK_TIMEOUT);
                if !acked {
                    repl.state.sync_degraded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    Ok(format!(
        "OK fed {} subs={} rejected={tripped}",
        rows.len(),
        workers.len()
    ))
}

/// Snapshot every subscription on `chan` (atomic tmp+rename each), then
/// truncate the WAL below the low-water mark — the minimum ordinal any
/// snapshot still needs.  Caller holds the channel's persist lock.
/// Best-effort: a failure leaves the WAL longer than necessary, never
/// inconsistent.  `parent` nests the snapshot span under the operation
/// that forced it (0 for a top-level snapshot).
fn snapshot_channel_locked(
    shared: &Shared,
    chan: &str,
    channel: &Channel,
    persist: &mut ChannelPersist,
    parent: u64,
) {
    persist.frames_since_snapshot = 0;
    let Some(data) = shared.data.as_ref() else {
        return;
    };
    if shared.standby.load(Ordering::SeqCst) {
        // A standby has durable sub metas but no live workers: the
        // "every subscription" sweep below would see none and truncate
        // frames promotion still needs.  Standby truncation is driven by
        // the primary's shipped checkpoints instead.
        return;
    }
    let started = Instant::now();
    let span = shared.span_begin(Level::Debug, "snapshot", parent, &[("channel", chan)]);
    let members: Vec<(String, Arc<SessionWorker>, u64, u64)> = {
        let Ok(subs) = shared.subs.lock() else {
            shared.span_end(Level::Debug, "snapshot", span, &[("aborted", "poisoned")]);
            return;
        };
        subs.iter()
            .filter(|(_, s)| s.channel == chan)
            .map(|(id, s)| {
                (
                    id.clone(),
                    Arc::clone(&s.worker),
                    s.base_rows,
                    s.base_records,
                )
            })
            .collect()
    };
    let mut low_water = persist.rows_total;
    let mut hold_truncation = false;
    for (id, worker, base_rows, base_records) in &members {
        match worker.snapshot_with_records() {
            Ok((text, records)) => {
                if data.save_sub_checkpoint(id, &text).is_err() {
                    hold_truncation = true;
                    continue;
                }
                ServerMetrics::inc(&shared.metrics.snapshots_total);
                if let Some(repl) = shared.repl.as_ref() {
                    repl.offer_checkpoint(id, &text);
                }
                low_water = low_water.min(base_rows + records.saturating_sub(*base_records));
            }
            // A worker that cannot snapshot right now (finishing, dead)
            // keeps its WAL rows: skip truncation this round.
            Err(_) => hold_truncation = true,
        }
    }
    let mut truncated = false;
    if !hold_truncation {
        if let Some(wal) = persist.wal.as_mut() {
            if wal.sync().is_ok() {
                ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
                channel.group.publish_synced(wal.rows_total());
                if let Ok(true) = wal.truncate_below(low_water) {
                    ServerMetrics::inc(&shared.metrics.wal_truncations_total);
                    truncated = true;
                }
            }
            shared
                .metrics
                .latency
                .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
        }
    }
    shared
        .metrics
        .latency
        .record_ns(LatencyOp::Snapshot, started.elapsed().as_nanos() as u64);
    shared.span_end(
        Level::Debug,
        "snapshot",
        span,
        &[
            ("subscriptions", &members.len().to_string()),
            ("truncated", if truncated { "1" } else { "0" }),
        ],
    );
}

fn lookup(shared: &Shared, id: &str) -> Result<Arc<SessionWorker>, String> {
    let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
    subs.get(id)
        .map(|s| Arc::clone(&s.worker))
        .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))
}

fn status(shared: &Shared, id: &str) -> Result<String, String> {
    let worker = lookup(shared, id)?;
    let status = worker.status().map_err(|e| worker_err(&e))?;
    Ok(format!(
        "OK status records={} skipped={} quarantined={} window={} trip={} poisoned={}",
        status.records,
        status.skipped,
        status.quarantined,
        status.window_bytes,
        status.trip.map_or("none", |t| trip_name(t.reason)),
        u8::from(status.poisoned),
    ))
}

fn checkpoint(shared: &Shared, id: &str) -> Result<String, String> {
    let worker = lookup(shared, id)?;
    let text = worker.snapshot().map_err(|e| worker_err(&e))?;
    Ok(format!("CHECKPOINT {id}\n{text}"))
}

/// `CHECKPOINT <id> DURABLE`: force an atomic on-disk snapshot and reply
/// with the durable resume ordinal — the first channel row this
/// subscription has *not* yet observed, which is exactly where recovery
/// (or a promoted standby) resumes it.  The channel WAL is synced first
/// under the persist lock so the reported ordinal is never ahead of
/// durable rows.
fn checkpoint_durable(shared: &Shared, id: &str) -> Result<String, String> {
    let Some(data) = shared.data.as_ref() else {
        return Err(err(2, "CHECKPOINT DURABLE requires --data-dir"));
    };
    let (worker, chan, base_rows, base_records) = {
        let subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        let sub = subs
            .get(id)
            .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))?;
        (
            Arc::clone(&sub.worker),
            sub.channel.clone(),
            sub.base_rows,
            sub.base_records,
        )
    };
    let channel = {
        let channels = shared
            .channels
            .lock()
            .map_err(|_| err(4, "lock poisoned"))?;
        channels
            .get(&chan)
            .cloned()
            .ok_or_else(|| err(4, format!("channel '{chan}' is gone")))?
    };
    let mut persist = channel
        .persist
        .lock()
        .map_err(|_| err(4, "lock poisoned"))?;
    if let Some(wal) = persist.wal.as_mut() {
        wal.sync()
            .map_err(|e| err(4, format!("wal sync on '{chan}': {e}")))?;
        ServerMetrics::inc(&shared.metrics.wal_fsyncs_total);
        shared
            .metrics
            .latency
            .record_ns(LatencyOp::Fsync, wal.take_fsync_ns());
        channel.group.publish_synced(wal.rows_total());
    }
    let (text, records) = worker.snapshot_with_records().map_err(|e| worker_err(&e))?;
    data.save_sub_checkpoint(id, &text)
        .map_err(|e| serve_err(&e))?;
    ServerMetrics::inc(&shared.metrics.snapshots_total);
    if let Some(repl) = shared.repl.as_ref() {
        repl.offer_checkpoint(id, &text);
    }
    drop(persist);
    let ordinal = base_rows + records.saturating_sub(base_records);
    Ok(format!("OK checkpoint {id} durable ordinal={ordinal}"))
}

fn unsubscribe(shared: &Shared, id: &str) -> Result<String, String> {
    let sub = {
        let mut subs = shared.subs.lock().map_err(|_| err(4, "lock poisoned"))?;
        subs.remove(id)
            .ok_or_else(|| err(2, format!("unknown subscription '{id}'")))?
    };
    // Durable files go first: a crash between removal and finish delivers
    // nothing to this client, but can never resurrect an unsubscribed
    // query on restart.
    if let Some(data) = shared.data.as_ref() {
        data.remove_sub(id);
        if let Some(repl) = shared.repl.as_ref() {
            repl.offer_remove(id);
        }
    }
    let report = sub.worker.finish().map_err(|e| worker_err(&e))?;
    // An unsubscribe that surfaces a trip, quarantine, or error is the
    // operator-visible outcome of a misbehaving tenant: warn.  A clean
    // finish is routine: info.
    let troubled = report.trip.is_some() || report.error.is_some() || report.quarantined > 0;
    shared.span_event(
        if troubled { Level::Warn } else { Level::Info },
        "unsubscribe",
        &[
            ("sub", id),
            ("channel", &sub.channel),
            ("rows", &report.rows.to_string()),
            ("quarantined", &report.quarantined.to_string()),
            (
                "trip",
                report.trip.as_ref().map_or("none", |t| trip_name(t.reason)),
            ),
        ],
    );
    if let Some(profile) = report.profile {
        shared.metrics.retain_profile(id, profile);
    }
    // Exit-style result code: 0 clean, 4 governed/runtime — partial CSV
    // rides along either way.
    let code = if report.error.is_some() || report.trip.is_some() {
        4
    } else {
        0
    };
    let mut head = format!("RESULT {id} {code} rows={}", report.rows);
    if let Some(trip) = &report.trip {
        head.push_str(&format!(" trip={}", trip_name(trip.reason)));
    }
    if let Some(error) = &report.error {
        head.push_str(&format!(
            " error={}",
            error.replace(char::is_whitespace, "_")
        ));
    }
    Ok(format!("{head}\n{}", report.csv))
}

/// Minimal HTTP/1.1 shim: `GET /metrics` serves the Prometheus
/// exposition, `GET /status` the live-state JSON document, everything
/// else 404s.  One request per connection.
///
/// The whole response — status line, headers, body — is assembled into
/// one buffer and sent with a single `write_all`, so a strict scraper
/// never observes a partial header block, and `Content-Length` is
/// always the byte length of exactly the body that follows.
fn serve_http(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients aren't reset mid-send.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status_line, content_type, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        let views = http_sub_views(shared);
        let live: Vec<String> = views
            .iter()
            .map(|v| live_gauges(&v.id, &v.status, v.queue_depth))
            .collect();
        let mut body = shared.metrics.render(&live);
        if shared.config.shared_matcher.enabled() {
            body.push_str(&patternset_exposition(shared, &views));
        }
        if let Some(snap) = repl_snapshot(shared) {
            body.push_str(&repl_exposition(&snap));
        }
        body.push_str(
            "# HELP sqlts_standby server is an unpromoted warm standby\n\
             # TYPE sqlts_standby gauge\n",
        );
        body.push_str(&format!(
            "sqlts_standby {}\n",
            u8::from(shared.standby.load(Ordering::SeqCst))
        ));
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
    } else if path == "/status" || path.starts_with("/status?") {
        let subs = http_sub_views(shared);
        let draining = shared.draining.load(Ordering::SeqCst);
        let standby = shared.standby.load(Ordering::SeqCst);
        let snap = repl_snapshot(shared);
        (
            "200 OK",
            "application/json; charset=utf-8",
            status_json(&shared.metrics, &subs, draining, standby, snap.as_ref()),
        )
    } else {
        (
            "404 Not Found",
            "text/plain",
            "not found: only GET /metrics and GET /status are served\n".to_string(),
        )
    };
    let mut response = String::with_capacity(body.len() + 160);
    response.push_str("HTTP/1.1 ");
    response.push_str(status_line);
    response.push_str("\r\nContent-Type: ");
    response.push_str(content_type);
    response.push_str("\r\nContent-Length: ");
    response.push_str(&body.len().to_string());
    response.push_str("\r\nConnection: close\r\n\r\n");
    response.push_str(&body);
    let mut writer = stream;
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

/// The primary's live replication health (`None` without
/// `--replicate-to`): counters from [`Replicator`], lag computed against
/// every channel's current durable row count.
fn repl_snapshot(shared: &Shared) -> Option<ReplSnapshot> {
    let repl = shared.repl.as_ref()?;
    let rows: Vec<(String, u64)> = shared
        .channels
        .lock()
        .map(|channels| {
            channels
                .iter()
                .map(|(name, c)| {
                    (
                        name.clone(),
                        c.persist.lock().map(|p| p.rows_total).unwrap_or(0),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let lag = repl
        .state
        .lag_rows(rows.iter().map(|(name, total)| (name.as_str(), *total)));
    Some(repl.snapshot(lag))
}

/// Roll the per-channel shared pattern-set registries into one
/// Prometheus block.  Registries carry the compile shape and the memo
/// savings; the *logical* test total comes from the live sessions (solo
/// subscriptions included — their tests are all physically evaluated,
/// which is exactly what `tests_evaluated = logical - saved` charges).
fn patternset_exposition(shared: &Shared, views: &[SubStatusView]) -> String {
    let registries: Vec<Arc<SetRegistry>> = shared
        .channels
        .lock()
        .map(|channels| channels.values().map(|c| Arc::clone(&c.registry)).collect())
        .unwrap_or_default();
    let mut stats = PatternSetStats::default();
    for registry in registries {
        stats.absorb(&registry.stats());
    }
    stats.tests_logical = views.iter().map(|v| v.status.predicate_tests).sum();
    stats.tests_evaluated = stats.tests_logical.saturating_sub(stats.tests_saved);
    stats.to_prometheus()
}

/// Snapshot every live subscription's observable state for the HTTP
/// endpoints: status (records/skips/trip), queue depth, worker phase.
fn http_sub_views(shared: &Shared) -> Vec<SubStatusView> {
    let handles: Vec<(String, String, Arc<SessionWorker>)> = shared
        .subs
        .lock()
        .map(|subs| {
            subs.iter()
                .map(|(id, s)| (id.clone(), s.channel.clone(), Arc::clone(&s.worker)))
                .collect()
        })
        .unwrap_or_default();
    let mut views: Vec<SubStatusView> = handles
        .into_iter()
        .filter_map(|(id, channel, worker)| {
            worker.status().ok().map(|status| SubStatusView {
                id,
                channel,
                status,
                queue_depth: worker.queue_depth(),
                phase: worker.phase_tag().phase().as_str(),
            })
        })
        .collect();
    views.sort_by(|a, b| a.id.cmp(&b.id));
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn schema_spec_round_trip_and_errors() {
        let schema = parse_schema_spec("name:str,day:int,price:float").unwrap();
        assert_eq!(schema.arity(), 3);
        assert!(parse_schema_spec("name").is_err());
        assert!(parse_schema_spec("name:blob").is_err());
    }

    #[test]
    fn unknown_verbs_and_empty_frames_are_usage_errors() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        for payload in ["", "WHAT is this", "SUBSCRIBE onlyone", "OPEN q"] {
            let reply = dispatch(shared, 1, payload).unwrap_err();
            assert!(reply.starts_with("ERR 2 "), "{payload:?} -> {reply}");
        }
        assert_eq!(dispatch(shared, 1, "PING").unwrap(), "OK pong");
    }

    #[test]
    fn end_to_end_over_dispatch() {
        // Protocol-level round trip without sockets: open, subscribe,
        // feed, status, checkpoint, unsubscribe.
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        // Same schema is idempotent; different schema is rejected.
        dispatch(shared, 2, "OPEN q name:str,day:int,price:float").unwrap();
        assert!(dispatch(shared, 2, "OPEN q name:str").is_err());
        let sql = "SELECT X.name, Z.day AS day FROM q CLUSTER BY name SEQUENCE BY day \
                   AS (X, *Y, Z) WHERE Y.price > Y.previous.price \
                   AND Z.price < Z.previous.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s1 q\n{sql}")).unwrap();
        assert!(
            dispatch(shared, 1, &format!("SUBSCRIBE s1 q\n{sql}")).is_err(),
            "duplicate id must be rejected"
        );
        let mut body = String::new();
        for day in 0..40 {
            let wave = (day % 7) as f64;
            body.push_str(&format!("AAA,{day},{}\n", 100.0 + 3.0 * wave));
        }
        let reply = dispatch(shared, 1, &format!("FEED q\n{body}")).unwrap();
        assert!(reply.starts_with("OK fed 40 subs=1"), "{reply}");
        let status = dispatch(shared, 1, "STATUS s1").unwrap();
        assert!(status.contains("records=40"), "{status}");
        assert!(status.contains("trip=none"), "{status}");
        let cp = dispatch(shared, 1, "CHECKPOINT s1").unwrap();
        assert!(
            cp.starts_with("CHECKPOINT s1\nsqlts-checkpoint v1\n"),
            "{cp}"
        );
        let result = dispatch(shared, 1, "UNSUBSCRIBE s1").unwrap();
        let head = result.lines().next().unwrap();
        assert!(head.starts_with("RESULT s1 0 rows="), "{head}");
        assert!(result.contains("name,day\n"), "{result}");
        // Resume from the checkpoint under a new id and finish empty-handed
        // but cleanly (no further rows).
        let text = cp.strip_prefix("CHECKPOINT s1\n").unwrap();
        dispatch(shared, 1, &format!("RESUME s2 q\n{sql}\n{text}")).unwrap();
        let resumed = dispatch(shared, 1, "UNSUBSCRIBE s2").unwrap();
        assert!(resumed.lines().next().unwrap().starts_with("RESULT s2 0"));
    }

    #[test]
    fn admission_limit_is_enforced() {
        let config = ServerConfig {
            max_subscriptions: 1,
            ..ServerConfig::default()
        };
        let server = Server::bind(config).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE a q\n{sql}")).unwrap();
        let reply = dispatch(shared, 1, &format!("SUBSCRIBE b q\n{sql}")).unwrap_err();
        assert!(reply.starts_with("ERR 4 admission"), "{reply}");
        // Freeing the slot re-admits.
        dispatch(shared, 1, "UNSUBSCRIBE a").unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE b q\n{sql}")).unwrap();
    }

    #[test]
    fn feeds_are_channel_scoped() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN a name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, "OPEN b ticker:str,t:int,volume:float").unwrap();
        let sql_a = "SELECT X.name FROM a CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                     WHERE Z.price < X.price";
        let sql_b = "SELECT X.ticker FROM b CLUSTER BY ticker SEQUENCE BY t AS (X, Z) \
                     WHERE Z.volume < X.volume";
        dispatch(shared, 1, &format!("SUBSCRIBE sa a\n{sql_a}")).unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE sb b\n{sql_b}")).unwrap();
        // A feed on channel a must reach only a's subscription — b's has a
        // different schema and must never see these rows.
        let reply = dispatch(shared, 1, "FEED a\nIBM,1,50.0").unwrap();
        assert!(reply.starts_with("OK fed 1 subs=1"), "{reply}");
        let sb = dispatch(shared, 1, "STATUS sb").unwrap();
        assert!(sb.contains("records=0"), "{sb}");
    }

    #[test]
    fn shared_matcher_saves_tests_and_keeps_results_byte_identical() {
        let off = Server::bind(ServerConfig::default()).unwrap();
        let on = Server::bind(ServerConfig {
            shared_matcher: SharedMatcherMode::On,
            ..ServerConfig::default()
        })
        .unwrap();
        let sql = |i: usize| {
            format!(
                "SELECT X.name, Z.day AS day FROM q CLUSTER BY name SEQUENCE BY day \
                 AS (X, Y, Z) WHERE X.price > 95 AND Y.price > X.previous.price \
                 AND Z.price < {}",
                100 + i
            )
        };
        let mut body = String::new();
        for day in 0..50 {
            for name in ["AAA", "BBB"] {
                let price = 94 + ((day * 7 + name.len()) % 13);
                body.push_str(&format!("{name},{day},{price}\n"));
            }
        }
        for server in [&off, &on] {
            let shared = &server.shared;
            dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
            for i in 0..8 {
                dispatch(shared, 1, &format!("SUBSCRIBE s{i} q\n{}", sql(i))).unwrap();
            }
            dispatch(shared, 1, &format!("FEED q\n{body}")).unwrap();
        }
        // Scrape the shared server while the subscriptions are still live.
        let views = http_sub_views(&on.shared);
        let prom = patternset_exposition(&on.shared, &views);
        let metric = |name: &str| -> u64 {
            prom.lines()
                .find_map(|l| l.strip_prefix(&format!("{name} ")))
                .unwrap_or_else(|| panic!("missing {name} in:\n{prom}"))
                .parse()
                .unwrap()
        };
        assert!(metric("sqlts_patternset_tests_shared") > 0, "{prom}");
        assert!(
            metric("sqlts_patternset_tests_evaluated") < metric("sqlts_patternset_tests_logical"),
            "{prom}"
        );
        assert_eq!(metric("sqlts_patternset_queries"), 8, "{prom}");
        // Per-subscription results are byte-identical shared or not.
        for i in 0..8 {
            let solo = dispatch(&off.shared, 1, &format!("UNSUBSCRIBE s{i}")).unwrap();
            let shared = dispatch(&on.shared, 1, &format!("UNSUBSCRIBE s{i}")).unwrap();
            assert_eq!(solo, shared, "subscription s{i} diverged under sharing");
        }
    }

    #[test]
    fn bad_sql_and_bad_rows_map_to_input_codes() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let reply = dispatch(shared, 1, "SUBSCRIBE s q\nSELECT garbage FROM").unwrap_err();
        assert!(reply.starts_with("ERR 3 "), "{reply}");
        let reply = dispatch(shared, 1, "FEED q\nIBM,notaday,50").unwrap_err();
        assert!(reply.starts_with("ERR 3 "), "{reply}");
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    fn temp_data_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-server-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(root: &Path, every: u64) -> ServerConfig {
        ServerConfig {
            data_dir: Some(root.to_path_buf()),
            fsync: FsyncPolicy::Off,
            checkpoint_every_frames: every,
            ..ServerConfig::default()
        }
    }

    const KILL_SQL: &str = "SELECT X.name, Z.day AS day FROM q CLUSTER BY name \
                            SEQUENCE BY day AS (X, *Y, Z) \
                            WHERE Y.price > Y.previous.price \
                            AND Z.price < Z.previous.price";

    fn kill_frames() -> Vec<String> {
        (0..12)
            .map(|f| {
                let mut body = String::new();
                for r in 0..3 {
                    let day = f * 3 + r;
                    let wave = (day % 5) as f64;
                    body.push_str(&format!("AAA,{day},{}\n", 100.0 + 4.0 * wave));
                }
                body
            })
            .collect()
    }

    /// The tentpole acceptance in miniature: kill the server (drop it
    /// without drain, LOCK file left behind) after *every* possible
    /// frame prefix; the recovered run's final result must be
    /// byte-identical to an uninterrupted run every time.
    #[test]
    fn recovery_is_byte_identical_after_a_kill_at_every_frame_boundary() {
        let frames = kill_frames();
        // Reference: the uninterrupted, non-durable run.
        let reference = {
            let server = Server::bind(ServerConfig::default()).unwrap();
            let shared = &server.shared;
            dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
            dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
            for frame in &frames {
                dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
            }
            dispatch(shared, 1, "UNSUBSCRIBE s").unwrap()
        };
        assert!(reference.contains("\nname,day\n") || reference.contains(" rows="));
        for k in 0..=frames.len() {
            let root = temp_data_dir(&format!("kill{k}"));
            {
                let server = Server::bind(durable_config(&root, 3)).unwrap();
                let shared = &server.shared;
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
                dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
                for frame in &frames[..k] {
                    dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
                }
                // Simulated SIGKILL: the server object is dropped with no
                // drain — snapshots stay stale, the LOCK file stays put.
            }
            let server = Server::bind(durable_config(&root, 3)).unwrap();
            let shared = &server.shared;
            let report = server.recovery().expect("durable server reports recovery");
            assert_eq!(report.channels, 1, "kill@{k}");
            assert_eq!(report.subscriptions, 1, "kill@{k}");
            for frame in &frames[k..] {
                dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
            }
            let result = dispatch(shared, 1, "UNSUBSCRIBE s").unwrap();
            assert_eq!(result, reference, "kill after frame {k} diverged");
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn open_reply_reports_durable_rows_only_with_a_data_dir() {
        let root = temp_data_dir("openrows");
        {
            let server = Server::bind(durable_config(&root, 64)).unwrap();
            let shared = &server.shared;
            assert_eq!(
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
                "OK opened q rows=0"
            );
            dispatch(shared, 1, "FEED q\nAAA,1,10\nAAA,2,11").unwrap();
            // Re-OPEN reports the durable row count a crashed feeder
            // resumes from.
            assert_eq!(
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
                "OK opened q rows=2"
            );
        }
        // After a crash the count survives.
        let server = Server::bind(durable_config(&root, 64)).unwrap();
        assert_eq!(
            dispatch(&server.shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
            "OK opened q rows=2"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unsubscribe_deletes_durable_state_before_finishing() {
        let root = temp_data_dir("unsub");
        let server = Server::bind(durable_config(&root, 64)).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{sql}")).unwrap();
        let meta = root.join("subs").join("s.meta");
        assert!(meta.exists(), "subscription metadata persisted");
        dispatch(shared, 1, "UNSUBSCRIBE s").unwrap();
        assert!(!meta.exists(), "unsubscribe removes durable files");
        drop(server);
        // A restart must not resurrect the unsubscribed query.
        let server = Server::bind(durable_config(&root, 64)).unwrap();
        assert_eq!(server.recovery().unwrap().subscriptions, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_truncates_once_snapshots_pass_the_low_water_mark() {
        let root = temp_data_dir("lowwater");
        let config = ServerConfig {
            // Roll a segment on every append so each frame is alone in
            // its segment and truncation (whole-segment unlink) can bite.
            wal_segment_bytes: 1,
            ..durable_config(&root, 1)
        };
        let server = Server::bind(config).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                   WHERE Z.price < X.price";
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{sql}")).unwrap();
        for day in 0..6 {
            dispatch(shared, 1, &format!("FEED q\nAAA,{day},{}", 50 - day)).unwrap();
        }
        // checkpoint_every_frames=1: every feed snapshots and truncates.
        // Every closed segment is unlinked; the active segment (which
        // always retains the newest frame) is all that survives.
        let scan = crate::wal::scan_wal(&root.join("channels").join("q.wal")).unwrap();
        assert_eq!(scan.frames.len(), 1, "only the active frame: {scan:?}");
        assert_eq!(scan.frames[0].end(), 6, "{scan:?}");
        assert_eq!(scan.segments.len(), 1, "{scan:?}");
        assert_eq!(scan.rows_total, 6, "ordinal survives truncation");
        assert!(shared.metrics.wal_truncations_total.load(Ordering::Relaxed) > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn second_bind_on_a_locked_data_dir_is_refused() {
        let root = temp_data_dir("locked");
        let first = Server::bind(durable_config(&root, 64)).unwrap();
        let second = Server::bind(durable_config(&root, 64));
        match second {
            Err(e) => {
                assert_eq!(e.exit_code(), 2, "{e}");
                assert!(e.message().contains("in use"), "{e}");
            }
            Ok(_) => panic!("second bind on a locked dir must fail"),
        }
        drop(first);
        Server::bind(durable_config(&root, 64)).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_listen_address_is_a_usage_error() {
        let config = ServerConfig {
            listen: "definitely:not:an:address".into(),
            ..ServerConfig::default()
        };
        match Server::bind(config) {
            Err(e) => assert_eq!(e.exit_code(), 2, "{e}"),
            Ok(_) => panic!("bad listen address must fail"),
        }
    }

    #[test]
    fn group_commit_coalesces_concurrent_feeders() {
        let root = temp_data_dir("groupcommit");
        let config = ServerConfig {
            fsync: FsyncPolicy::Group { window_us: 5_000 },
            ..durable_config(&root, 1_000)
        };
        let server = Server::bind(config).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        // Four feeders race 5 FEEDs each; every ack means "my rows are
        // fsynced", but the 5 ms leader window lets concurrent appends
        // share one fsync(2).
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let shared = &server.shared;
                scope.spawn(move || {
                    for f in 0..5u64 {
                        let day = t * 100 + f;
                        let reply =
                            dispatch(shared, t + 1, &format!("FEED q\nAAA,{day},10")).unwrap();
                        assert!(reply.starts_with("OK fed 1"), "{reply}");
                    }
                });
            }
        });
        let appends = shared.metrics.wal_appends_total.load(Ordering::Relaxed);
        let fsyncs = shared.metrics.wal_fsyncs_total.load(Ordering::Relaxed);
        assert_eq!(appends, 20);
        assert!(
            fsyncs < appends,
            "group commit must batch: {fsyncs} fsyncs for {appends} appends"
        );
        drop(server);
        // Every acked row really was durable.
        let server = Server::bind(durable_config(&root, 1_000)).unwrap();
        assert_eq!(
            dispatch(&server.shared, 1, "OPEN q name:str,day:int,price:float").unwrap(),
            "OK opened q rows=20"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_durable_reply_matches_the_checkpoint_on_disk() {
        let root = temp_data_dir("cpdurable");
        let server = Server::bind(durable_config(&root, 1_000)).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
        for frame in kill_frames().iter().take(4) {
            dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
        }
        let reply = dispatch(shared, 1, "CHECKPOINT s DURABLE").unwrap();
        let ordinal: u64 = reply
            .strip_prefix("OK checkpoint s durable ordinal=")
            .unwrap_or_else(|| panic!("unexpected reply: {reply}"))
            .parse()
            .unwrap();
        assert_eq!(ordinal, 12, "4 frames x 3 rows all checkpointed");
        // The regression the verb exists for: the ordinal in the reply
        // must be derived from the snapshot that actually hit the disk.
        let cp_text = std::fs::read_to_string(root.join("subs").join("s.checkpoint")).unwrap();
        let cp = sqlts_core::SessionCheckpoint::from_text(&cp_text).unwrap();
        let meta =
            SubMeta::from_text(&std::fs::read_to_string(root.join("subs").join("s.meta")).unwrap())
                .unwrap();
        assert_eq!(
            ordinal,
            meta.base_rows + cp.records().saturating_sub(meta.base_records),
            "reply ordinal diverges from the durable checkpoint"
        );
        // The lowercase spelling works too, and a plain CHECKPOINT still
        // answers with the portable text codec.
        let reply = dispatch(shared, 1, "CHECKPOINT s durable").unwrap();
        assert!(reply.starts_with("OK checkpoint s durable ordinal="), "{reply}");
        let plain = dispatch(shared, 1, "CHECKPOINT s").unwrap();
        assert!(plain.starts_with("CHECKPOINT s\nsqlts-checkpoint v1\n"), "{plain}");
        drop(server);
        // Without a data dir there is nothing durable to promise.
        let server = Server::bind(ServerConfig::default()).unwrap();
        let shared = &server.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
        let err = dispatch(shared, 1, "CHECKPOINT s DURABLE").unwrap_err();
        assert!(err.starts_with("ERR 2 "), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    #[test]
    fn bind_rejects_invalid_replication_configs() {
        let cases: [(&str, ServerConfig); 5] = [
            (
                "--standby without --data-dir",
                ServerConfig {
                    standby: true,
                    ..ServerConfig::default()
                },
            ),
            (
                "--replicate-to without --data-dir",
                ServerConfig {
                    replicate_to: Some("127.0.0.1:9".into()),
                    ..ServerConfig::default()
                },
            ),
            (
                "--standby with --replicate-to",
                ServerConfig {
                    standby: true,
                    replicate_to: Some("127.0.0.1:9".into()),
                    ..durable_config(&temp_data_dir("cfg-chain"), 64)
                },
            ),
            (
                "--standby with --fsync group",
                ServerConfig {
                    standby: true,
                    fsync: FsyncPolicy::Group { window_us: 500 },
                    ..durable_config(&temp_data_dir("cfg-group"), 64)
                },
            ),
            (
                "--promote-on-disconnect without --standby",
                ServerConfig {
                    promote_on_disconnect: true,
                    ..ServerConfig::default()
                },
            ),
        ];
        for (what, config) in cases {
            match Server::bind(config) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{what}: {e}"),
                Ok(_) => panic!("{what} must be refused at bind"),
            }
        }
    }

    #[test]
    fn standby_is_read_only_until_promoted() {
        let root = temp_data_dir("readonly");
        let config = ServerConfig {
            standby: true,
            ..durable_config(&root, 64)
        };
        let server = Server::bind(config).unwrap();
        let shared = &server.shared;
        // Mutating verbs are refused with a hint at the escape hatch.
        for payload in [
            "OPEN q name:str,day:int,price:float",
            "FEED q\nAAA,1,10",
            &format!("SUBSCRIBE s q\n{KILL_SQL}"),
            "UNSUBSCRIBE s",
            "CHECKPOINT s",
            "DRAIN",
        ] {
            let err = dispatch(shared, 1, payload).unwrap_err();
            assert!(err.starts_with("ERR 4 "), "{payload:?} -> {err}");
            assert!(err.contains("PROMOTE"), "{payload:?} -> {err}");
        }
        assert_eq!(dispatch(shared, 1, "PING").unwrap(), "OK pong");
        // Promotion flips it into a plain durable primary.
        let reply = dispatch(shared, 1, "PROMOTE").unwrap();
        assert!(reply.starts_with("OK promoted channels=0"), "{reply}");
        assert!(!server.is_standby());
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, "FEED q\nAAA,1,10").unwrap();
        // Promoting twice (or promoting a server that never was a
        // standby) is a usage error, not a silent no-op.
        let err = dispatch(shared, 1, "PROMOTE").unwrap_err();
        assert!(err.starts_with("ERR 2 "), "{err}");
        let plain = Server::bind(ServerConfig::default()).unwrap();
        let err = dispatch(&plain.shared, 1, "PROMOTE").unwrap_err();
        assert!(err.starts_with("ERR 2 "), "{err}");
        let err = dispatch(&plain.shared, 1, "REPL HELLO v1").unwrap_err();
        assert!(err.starts_with("ERR 2 "), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A warm standby accepting a live replication stream, stoppable and
    /// promotable from the test thread.
    struct StandbyRig {
        server: Arc<Server>,
        stop: Arc<AtomicBool>,
        handle: Option<std::thread::JoinHandle<()>>,
        root: PathBuf,
        addr: String,
    }

    impl StandbyRig {
        fn spawn(name: &str) -> StandbyRig {
            let root = temp_data_dir(name);
            let config = ServerConfig {
                listen: "127.0.0.1:0".into(),
                standby: true,
                ..durable_config(&root, 1_000)
            };
            let server = Arc::new(Server::bind(config).unwrap());
            let addr = server.local_addr().unwrap().to_string();
            let stop = Arc::new(AtomicBool::new(false));
            let handle = {
                let (server, stop) = (Arc::clone(&server), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let _ = server.run_until(&stop);
                })
            };
            StandbyRig {
                server,
                stop,
                handle: Some(handle),
                root,
                addr,
            }
        }

        /// Block until the primary's resync has landed the subscription's
        /// durable files on this standby.
        fn wait_for_sub(&self, id: &str) {
            let meta = self.root.join("subs").join(format!("{id}.meta"));
            let cp = self.root.join("subs").join(format!("{id}.checkpoint"));
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !(meta.exists() && cp.exists()) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "standby never received subscription {id}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    impl Drop for StandbyRig {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    fn opened_rows(shared: &Shared) -> u64 {
        let reply = dispatch(shared, 7, "OPEN q name:str,day:int,price:float").unwrap();
        reply
            .strip_prefix("OK opened q rows=")
            .unwrap_or_else(|| panic!("unexpected reply: {reply}"))
            .parse()
            .unwrap()
    }

    /// The tentpole acceptance: kill the primary after every possible
    /// frame prefix, promote the standby, and require the promoted
    /// server's final result to be byte-identical to an uninterrupted
    /// run.  Under `sync` acks nothing may be lost; under `async` only
    /// unacked tail frames may be lost, and the test pins down exactly
    /// which by resuming from the promoted server's own durable ordinal.
    fn promotion_survives_kill_at_every_frame_boundary(ack: ReplAck) {
        let frames = kill_frames();
        let reference = {
            let server = Server::bind(ServerConfig::default()).unwrap();
            let shared = &server.shared;
            dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
            dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
            for frame in &frames {
                dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
            }
            dispatch(shared, 1, "UNSUBSCRIBE s").unwrap()
        };
        for k in 0..=frames.len() {
            let rig = StandbyRig::spawn(&format!("stby-{ack}-{k}"));
            let proot = temp_data_dir(&format!("prim-{ack}-{k}"));
            let acked_at_kill = {
                let primary = Server::bind(ServerConfig {
                    replicate_to: Some(rig.addr.clone()),
                    repl_ack: ack,
                    ..durable_config(&proot, 1_000)
                })
                .unwrap();
                let shared = &primary.shared;
                dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
                dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
                rig.wait_for_sub("s");
                for frame in &frames[..k] {
                    dispatch(shared, 1, &format!("FEED q\n{frame}")).unwrap();
                }
                let repl = shared.repl.as_ref().unwrap();
                if ack == ReplAck::Sync {
                    assert_eq!(
                        repl.state.sync_degraded.load(Ordering::Relaxed),
                        0,
                        "sync acks must not degrade against a live standby (kill@{k})"
                    );
                }
                repl.state.acked("q")
                // The primary dies here: dropped without drain, mid-ship
                // for whatever the queue still holds.
            };
            let reply = dispatch(&rig.server.shared, 9, "PROMOTE").unwrap();
            assert!(reply.starts_with("OK promoted channels=1"), "kill@{k}: {reply}");
            let shared = &rig.server.shared;
            let rows = opened_rows(shared);
            let fed = 3 * k as u64;
            if ack == ReplAck::Sync {
                // Every FEED ack waited for the standby ack: promotion
                // loses nothing.
                assert_eq!(rows, fed, "sync kill@{k} lost acked rows");
            } else {
                // Async may lose only the unacked tail, and never a frame
                // the primary had seen acknowledged.
                assert!(
                    acked_at_kill <= rows && rows <= fed,
                    "async kill@{k}: acked {acked_at_kill} <= rows {rows} <= fed {fed}"
                );
                assert_eq!(rows % 3, 0, "frames ship whole (kill@{k}, rows={rows})");
            }
            // Resume exactly where the promoted server says it is: the
            // lost set is precisely frames[rows/3..k], nothing else —
            // byte-identity below proves no mid-stream gap.
            for frame in &frames[(rows / 3) as usize..] {
                dispatch(shared, 9, &format!("FEED q\n{frame}")).unwrap();
            }
            let result = dispatch(shared, 9, "UNSUBSCRIBE s").unwrap();
            assert_eq!(result, reference, "{ack} kill after frame {k} diverged");
            assert!(
                shared.metrics.repl_promotions_total.load(Ordering::Relaxed) == 1,
                "kill@{k}"
            );
            let _ = std::fs::remove_dir_all(&proot);
        }
    }

    #[test]
    fn promotion_is_byte_identical_with_sync_acks() {
        promotion_survives_kill_at_every_frame_boundary(ReplAck::Sync);
    }

    #[test]
    fn promotion_loses_only_the_unacked_tail_with_async_acks() {
        promotion_survives_kill_at_every_frame_boundary(ReplAck::Async);
    }

    /// `repl::standby_append` + `DelayMs`: a sync-ack FEED must block
    /// until the standby has actually applied the frame.
    #[cfg(feature = "failpoints")]
    #[test]
    fn sync_feed_blocks_on_the_standby_ack() {
        use sqlts_relation::failpoints::{self, FailAction};
        let rig = StandbyRig::spawn("stby-delay");
        let proot = temp_data_dir("prim-delay");
        let primary = Server::bind(ServerConfig {
            replicate_to: Some(rig.addr.clone()),
            repl_ack: ReplAck::Sync,
            ..durable_config(&proot, 1_000)
        })
        .unwrap();
        let shared = &primary.shared;
        dispatch(shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        dispatch(shared, 1, &format!("SUBSCRIBE s q\n{KILL_SQL}")).unwrap();
        rig.wait_for_sub("s");
        failpoints::configure("repl::standby_append", FailAction::DelayMs(300));
        let started = std::time::Instant::now();
        dispatch(shared, 1, "FEED q\nAAA,1,10").unwrap();
        let elapsed = started.elapsed();
        failpoints::reset();
        assert!(
            elapsed >= Duration::from_millis(300),
            "sync FEED returned in {elapsed:?}, before the standby applied the frame"
        );
        assert_eq!(
            shared
                .repl
                .as_ref()
                .unwrap()
                .state
                .sync_degraded
                .load(Ordering::Relaxed),
            0,
            "a delayed ack inside the window is not a degrade"
        );
        drop(primary);
        let _ = std::fs::remove_dir_all(&proot);
    }

    #[test]
    fn malformed_durable_state_is_an_input_error() {
        let root = temp_data_dir("malformed");
        {
            let server = Server::bind(durable_config(&root, 64)).unwrap();
            dispatch(&server.shared, 1, "OPEN q name:str,day:int,price:float").unwrap();
        }
        std::fs::write(root.join("channels").join("q.schema"), "not a schema").unwrap();
        match Server::bind(durable_config(&root, 64)) {
            Err(e) => assert_eq!(e.exit_code(), 3, "{e}"),
            Ok(_) => panic!("malformed schema file must fail recovery"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
