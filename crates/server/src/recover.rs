//! The durable state directory behind `--data-dir` and the recovery pass
//! that rebuilds a crashed server from it.
//!
//! ## Layout
//!
//! ```text
//! DIR/LOCK                        single-writer lock (holder's pid)
//! DIR/channels/<name>.schema      channel schema spec ("col:type,...")
//! DIR/channels/<name>.wal         per-channel feed WAL (crate::wal)
//! DIR/subs/<id>.meta              subscription metadata (channel, SQL,
//!                                 ordinal bases) — sqlts-submeta v1
//! DIR/subs/<id>.checkpoint        latest sqlts-checkpoint v1 snapshot
//! ```
//!
//! Channel and subscription names come off the wire, so they are
//! percent-encoded before becoming file names — `../../etc/passwd` is a
//! perfectly legal subscription id and a perfectly illegal path.
//!
//! ## Recovery invariant
//!
//! Every snapshot records the channel row ordinal it covers
//! (`base_rows + (checkpoint records − base_records)`); the WAL retains
//! every frame at or past the *minimum* such ordinal (the low-water
//! mark).  Restart therefore resumes each worker from its snapshot and
//! replays exactly the WAL rows that worker has not yet seen — the same
//! rows, in the same order, as the uninterrupted run, which is what
//! makes recovered output byte-identical.
//!
//! All failures surface as [`ServeError`] on the CLI's established
//! exit-code classes — never a panic: 2 for unusable configuration
//! (bad listen address, locked or unwritable data dir), 3 for durable
//! state that cannot be trusted (malformed WAL header, snapshot, meta
//! or schema files), 4 for runtime failures while replaying.

use crate::wal::WalFrame;
use sqlts_core::{atomic_write, SessionWorker};
use sqlts_relation::{parse_headerless_row, ColumnType, Schema};
use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A serve-path failure, classified onto the CLI's exit-code classes.
#[derive(Debug)]
pub enum ServeError {
    /// Unusable configuration: bad listen address, locked or unwritable
    /// `--data-dir` (exit 2).
    Usage(String),
    /// Durable state that cannot be trusted: malformed WAL header,
    /// snapshot, metadata or schema file (exit 3).
    Input(String),
    /// Runtime failure during recovery or replay (exit 4).
    Runtime(String),
}

impl ServeError {
    /// The CLI exit code class this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            ServeError::Usage(_) => 2,
            ServeError::Input(_) => 3,
            ServeError::Runtime(_) => 4,
        }
    }

    /// The failure message without its class.
    pub fn message(&self) -> &str {
        match self {
            ServeError::Usage(m) | ServeError::Input(m) | ServeError::Runtime(m) => m,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for ServeError {}

impl From<crate::wal::WalError> for ServeError {
    fn from(e: crate::wal::WalError) -> ServeError {
        match e {
            crate::wal::WalError::Io(e) => ServeError::Runtime(format!("wal I/O: {e}")),
            crate::wal::WalError::Malformed(why) => ServeError::Input(format!("wal: {why}")),
        }
    }
}

/// Percent-encode a wire name into a safe file stem: every byte outside
/// `[A-Za-z0-9_.-]` (plus `%` itself and a bare leading dot) becomes
/// `%XX`, so distinct names map to distinct stems and no name can climb
/// out of the directory.
pub fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, b) in name.bytes().enumerate() {
        let plain = b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || (b == b'.' && i > 0);
        if plain {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Invert [`encode_name`].  Returns `None` for stems that are not valid
/// encodings (foreign files in the directory).
pub fn decode_name(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Render a schema back to the `OPEN` spec grammar (`name:type,...`).
pub fn schema_spec(schema: &Schema) -> String {
    schema
        .columns()
        .iter()
        .map(|c| {
            let ty = match c.ty {
                ColumnType::Int => "int",
                ColumnType::Float => "float",
                ColumnType::Str => "str",
                ColumnType::Date => "date",
            };
            format!("{}:{ty}", c.name)
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Durable per-subscription metadata (`subs/<id>.meta`).
///
/// `base_rows` is the channel row ordinal at which the subscription was
/// created (or resumed); `base_records` is the worker's checkpoint
/// record count at that moment (non-zero only for `RESUME`, whose
/// checkpoint arrives with history already in it).  The ordinal a
/// snapshot covers is then `base_rows + (records − base_records)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubMeta {
    /// Channel the subscription consumes.
    pub channel: String,
    /// Channel row ordinal when the subscription joined.
    pub base_rows: u64,
    /// Worker checkpoint record count when it joined (0 unless resumed).
    pub base_records: u64,
    /// The standing SQL-TS query.
    pub sql: String,
}

impl SubMeta {
    /// Serialize to the `sqlts-submeta v1` text form.
    pub fn to_text(&self) -> String {
        format!(
            "sqlts-submeta v1\nchannel {}\nbase_rows {}\nbase_records {}\nsql\n{}",
            encode_name(&self.channel),
            self.base_rows,
            self.base_records,
            self.sql
        )
    }

    /// Parse the `sqlts-submeta v1` text form.
    pub fn from_text(text: &str) -> Result<SubMeta, String> {
        let mut lines = text.lines();
        if lines.next() != Some("sqlts-submeta v1") {
            return Err("missing 'sqlts-submeta v1' header".into());
        }
        let mut channel = None;
        let mut base_rows = None;
        let mut base_records = None;
        for line in lines.by_ref() {
            if line == "sql" {
                break;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad metadata line '{line}'"))?;
            match key {
                "channel" => {
                    channel =
                        Some(decode_name(value).ok_or_else(|| "undecodable channel".to_string())?);
                }
                "base_rows" => {
                    base_rows = Some(value.parse().map_err(|_| "bad base_rows".to_string())?);
                }
                "base_records" => {
                    base_records = Some(value.parse().map_err(|_| "bad base_records".to_string())?);
                }
                other => return Err(format!("unknown metadata key '{other}'")),
            }
        }
        let sql: String = lines.collect::<Vec<_>>().join("\n");
        if sql.trim().is_empty() {
            return Err("missing sql section".into());
        }
        Ok(SubMeta {
            channel: channel.ok_or("missing channel")?,
            base_rows: base_rows.ok_or("missing base_rows")?,
            base_records: base_records.ok_or("missing base_records")?,
            sql,
        })
    }
}

/// Data dirs locked by *this* process — catches two in-process servers
/// (tests, embedders) binding the same directory, which the pid-based
/// LOCK file cannot distinguish from our own stale lock.
static ACTIVE_DIRS: Mutex<Option<HashSet<PathBuf>>> = Mutex::new(None);

fn register_dir(root: &Path) -> bool {
    let mut guard = ACTIVE_DIRS.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .get_or_insert_with(HashSet::new)
        .insert(root.to_path_buf())
}

fn deregister_dir(root: &Path) {
    let mut guard = ACTIVE_DIRS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(set) = guard.as_mut() {
        set.remove(root);
    }
}

fn pid_is_live(pid: u32) -> bool {
    // Good enough on Linux; elsewhere /proc is absent and every foreign
    // lock looks stale, which errs on the side of recoverability.  A
    // zombie still has a /proc entry but holds no lock worth honouring —
    // a SIGKILLed server lingers as one until its parent reaps it.
    let Ok(stat) = fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return false;
    };
    let state = stat
        .rsplit(')')
        .next()
        .and_then(|rest| rest.trim_start().chars().next());
    !matches!(state, Some('Z') | Some('X') | None)
}

/// An exclusively-locked durable state directory.
#[derive(Debug)]
pub struct DataDir {
    root: PathBuf,
}

impl DataDir {
    /// Create (if needed) and exclusively lock `root`.
    ///
    /// A LOCK file holding a live foreign pid refuses the lock (exit
    /// class 2); a LOCK whose pid is dead — or our own, left by a
    /// previous incarnation in this process — is stale and stolen.
    pub fn lock(root: &Path) -> Result<DataDir, ServeError> {
        for sub in ["channels", "subs"] {
            fs::create_dir_all(root.join(sub))
                .map_err(|e| ServeError::Usage(format!("data dir {}: {e}", root.display())))?;
        }
        let root = root
            .canonicalize()
            .map_err(|e| ServeError::Usage(format!("data dir: {e}")))?;
        if !register_dir(&root) {
            return Err(ServeError::Usage(format!(
                "data dir {} is already in use by this process",
                root.display()
            )));
        }
        let lock_path = root.join("LOCK");
        let own_pid = std::process::id();
        if let Ok(text) = fs::read_to_string(&lock_path) {
            if let Ok(pid) = text.trim().parse::<u32>() {
                if pid != own_pid && pid_is_live(pid) {
                    deregister_dir(&root);
                    return Err(ServeError::Usage(format!(
                        "data dir {} is locked by running pid {pid}",
                        root.display()
                    )));
                }
            }
        }
        if let Err(e) = atomic_write(&lock_path, format!("{own_pid}\n").as_bytes()) {
            deregister_dir(&root);
            return Err(ServeError::Usage(format!(
                "data dir {}: cannot write LOCK: {e}",
                root.display()
            )));
        }
        Ok(DataDir { root })
    }

    /// The locked directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `channels/<name>.wal`
    pub fn wal_path(&self, channel: &str) -> PathBuf {
        self.root
            .join("channels")
            .join(format!("{}.wal", encode_name(channel)))
    }

    fn schema_path(&self, channel: &str) -> PathBuf {
        self.root
            .join("channels")
            .join(format!("{}.schema", encode_name(channel)))
    }

    fn meta_path(&self, id: &str) -> PathBuf {
        self.root
            .join("subs")
            .join(format!("{}.meta", encode_name(id)))
    }

    fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.root
            .join("subs")
            .join(format!("{}.checkpoint", encode_name(id)))
    }

    /// Persist a channel's schema spec (atomic).
    pub fn save_channel(&self, channel: &str, schema: &Schema) -> Result<(), ServeError> {
        atomic_write(&self.schema_path(channel), schema_spec(schema).as_bytes())
            .map_err(|e| ServeError::Runtime(format!("persist channel '{channel}': {e}")))
    }

    /// Persist a subscription's metadata (atomic).
    pub fn save_sub_meta(&self, id: &str, meta: &SubMeta) -> Result<(), ServeError> {
        atomic_write(&self.meta_path(id), meta.to_text().as_bytes())
            .map_err(|e| ServeError::Runtime(format!("persist sub '{id}' meta: {e}")))
    }

    /// Persist a subscription's latest checkpoint snapshot (atomic).
    pub fn save_sub_checkpoint(&self, id: &str, text: &str) -> Result<(), ServeError> {
        atomic_write(&self.checkpoint_path(id), text.as_bytes())
            .map_err(|e| ServeError::Runtime(format!("persist sub '{id}' checkpoint: {e}")))
    }

    /// Load one subscription's metadata, `Ok(None)` when absent.  Unlike
    /// [`load_subs`](DataDir::load_subs) this does not require the
    /// checkpoint file: a standby receives the meta strictly before the
    /// first shipped checkpoint and must be able to resolve it alone.
    pub fn load_sub_meta(&self, id: &str) -> Result<Option<SubMeta>, ServeError> {
        let path = self.meta_path(id);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(ServeError::Runtime(format!("read {}: {e}", path.display())));
            }
        };
        let meta = SubMeta::from_text(&text).map_err(|e| {
            ServeError::Input(format!("malformed metadata file {}: {e}", path.display()))
        })?;
        Ok(Some(meta))
    }

    /// Remove a subscription's durable files.  Called *before* the
    /// worker is finished, so a crash in between resurrects nothing.
    pub fn remove_sub(&self, id: &str) {
        let _ = fs::remove_file(self.meta_path(id));
        let _ = fs::remove_file(self.checkpoint_path(id));
        let _ = fs::remove_file(sqlts_core::persist::staging_path(&self.checkpoint_path(id)));
    }

    /// Enumerate persisted channels as `(name, schema)`.
    pub fn load_channels(&self) -> Result<Vec<(String, Schema)>, ServeError> {
        let mut out = Vec::new();
        let dir = self.root.join("channels");
        let entries = fs::read_dir(&dir)
            .map_err(|e| ServeError::Runtime(format!("read {}: {e}", dir.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| ServeError::Runtime(format!("read {}: {e}", dir.display())))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("schema") {
                continue;
            }
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            let Some(name) = decode_name(stem) else {
                continue;
            };
            let spec = fs::read_to_string(&path)
                .map_err(|e| ServeError::Runtime(format!("read {}: {e}", path.display())))?;
            let schema = crate::server::parse_schema_spec(spec.trim()).map_err(|e| {
                ServeError::Input(format!("malformed schema file {}: {e}", path.display()))
            })?;
            out.push((name, schema));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Enumerate persisted subscriptions as `(id, meta, checkpoint)`.
    pub fn load_subs(&self) -> Result<Vec<(String, SubMeta, String)>, ServeError> {
        let mut out = Vec::new();
        let dir = self.root.join("subs");
        let entries = fs::read_dir(&dir)
            .map_err(|e| ServeError::Runtime(format!("read {}: {e}", dir.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| ServeError::Runtime(format!("read {}: {e}", dir.display())))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("meta") {
                continue;
            }
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            let Some(id) = decode_name(stem) else {
                continue;
            };
            let text = fs::read_to_string(&path)
                .map_err(|e| ServeError::Runtime(format!("read {}: {e}", path.display())))?;
            let meta = SubMeta::from_text(&text).map_err(|e| {
                ServeError::Input(format!("malformed metadata file {}: {e}", path.display()))
            })?;
            let cp_path = self.checkpoint_path(&id);
            let checkpoint = fs::read_to_string(&cp_path).map_err(|e| {
                ServeError::Input(format!(
                    "subscription '{id}' has metadata but no readable checkpoint \
                     ({}): {e}",
                    cp_path.display()
                ))
            })?;
            out.push((id, meta, checkpoint));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Release the LOCK file (graceful drain).  The in-process
    /// registration is released on drop either way; a crash skips this
    /// and leaves the LOCK behind, where the pid-liveness check makes it
    /// stealable.
    pub fn release(&self) {
        let _ = fs::remove_file(self.root.join("LOCK"));
    }
}

impl Drop for DataDir {
    fn drop(&mut self) {
        deregister_dir(&self.root);
    }
}

/// One recovered subscription, ready for WAL replay.
pub struct ReplaySub<'a> {
    /// Subscription id (diagnostics only).
    pub id: &'a str,
    /// First channel row ordinal this worker has *not* yet seen.
    pub resume_ordinal: u64,
    /// The respawned worker.
    pub worker: &'a SessionWorker,
}

/// What a channel's replay delivered.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayStats {
    /// Row deliveries accepted by workers.
    pub rows_replayed: u64,
    /// Row deliveries rejected by tripped/latched workers (these rows
    /// were equally rejected in the uninterrupted run).
    pub rows_rejected: u64,
}

/// Replay a channel's surviving WAL frames into its recovered workers.
///
/// Each worker receives exactly the rows at or past its
/// `resume_ordinal`, in WAL (= feed) order.  Per-row worker errors are
/// tolerated, matching the live fan-out: a governed subscription stays
/// latched and keeps its partial result.  A row that no longer parses
/// against the schema is an input error — the WAL validated it at feed
/// time, so this means the durable state is inconsistent.
pub fn replay_channel(
    channel: &str,
    schema: &Schema,
    frames: &[WalFrame],
    subs: &mut [ReplaySub<'_>],
) -> Result<ReplayStats, ServeError> {
    let mut stats = ReplayStats::default();
    for frame in frames {
        #[cfg(feature = "failpoints")]
        if let Some(sqlts_relation::failpoints::Injected::InjectError) =
            sqlts_relation::failpoints::hit("recover::replay", frame.start)
        {
            return Err(ServeError::Runtime(format!(
                "failpoint 'recover::replay' injected error at ordinal {}",
                frame.start
            )));
        }
        for (i, line) in frame.payload.lines().enumerate() {
            let ordinal = frame.start + i as u64;
            let row = parse_headerless_row(schema, line, i + 1).map_err(|e| {
                ServeError::Input(format!(
                    "channel '{channel}' wal row at ordinal {ordinal} no longer \
                     matches its schema: {e}"
                ))
            })?;
            for sub in subs.iter_mut() {
                if ordinal < sub.resume_ordinal {
                    continue;
                }
                match sub.worker.feed(row.clone()) {
                    Ok(()) => stats.rows_replayed += 1,
                    Err(_) => stats.rows_rejected += 1,
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-recover-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn name_encoding_round_trips_and_defangs_traversal() {
        for name in [
            "quote",
            "a/b",
            "../../etc/passwd",
            ".hidden",
            "naïve",
            "%41",
        ] {
            let enc = encode_name(name);
            assert!(!enc.contains('/'), "{name} -> {enc}");
            assert!(!enc.starts_with('.'), "{name} -> {enc}");
            assert_eq!(decode_name(&enc).as_deref(), Some(name));
        }
        // Distinct names never collide.
        assert_ne!(encode_name("a/b"), encode_name("a%2Fb"));
        assert_eq!(decode_name("no%GGhex"), None);
    }

    #[test]
    fn submeta_round_trip_and_rejections() {
        let meta = SubMeta {
            channel: "quote/eu".into(),
            base_rows: 42,
            base_records: 7,
            sql: "SELECT X.name\nFROM q CLUSTER BY name SEQUENCE BY day AS (X, Z)\n\
                  WHERE Z.price < X.price"
                .into(),
        };
        assert_eq!(SubMeta::from_text(&meta.to_text()).unwrap(), meta);
        assert!(SubMeta::from_text("garbage").is_err());
        assert!(SubMeta::from_text("sqlts-submeta v1\nchannel q\nsql\n").is_err());
        assert!(SubMeta::from_text("sqlts-submeta v1\nbase_rows 1\nsql\nSELECT").is_err());
    }

    #[test]
    fn lock_is_exclusive_within_process_and_stealable_when_stale() {
        let root = temp_root("lock");
        let first = DataDir::lock(&root).unwrap();
        // Same process, same dir: refused by the in-process registry.
        let again = DataDir::lock(&root);
        assert!(matches!(again, Err(ServeError::Usage(_))), "{again:?}");
        drop(first);
        // A LOCK file holding our own pid (a prior incarnation in this
        // process) is stale by definition.
        let second = DataDir::lock(&root).unwrap();
        drop(second);
        // A LOCK file holding a dead pid is stolen.
        fs::write(root.join("LOCK"), "999999999\n").unwrap();
        let third = DataDir::lock(&root).unwrap();
        third.release();
        assert!(!root.join("LOCK").exists(), "release removes the LOCK");
    }

    #[test]
    fn channels_and_subs_round_trip_through_the_directory() {
        let root = temp_root("roundtrip");
        let dir = DataDir::lock(&root).unwrap();
        let schema = crate::server::parse_schema_spec("name:str,day:int,price:float").unwrap();
        dir.save_channel("quote", &schema).unwrap();
        let loaded = dir.load_channels().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "quote");
        assert_eq!(loaded[0].1, schema);

        let meta = SubMeta {
            channel: "quote".into(),
            base_rows: 0,
            base_records: 0,
            sql: "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                  WHERE Z.price < X.price"
                .into(),
        };
        dir.save_sub_meta("s1", &meta).unwrap();
        dir.save_sub_checkpoint("s1", "sqlts-checkpoint v1\n...")
            .unwrap();
        let subs = dir.load_subs().unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].0, "s1");
        assert_eq!(subs[0].1, meta);
        dir.remove_sub("s1");
        assert!(dir.load_subs().unwrap().is_empty());
    }

    #[test]
    fn meta_without_checkpoint_is_an_input_error() {
        let root = temp_root("orphan");
        let dir = DataDir::lock(&root).unwrap();
        let meta = SubMeta {
            channel: "q".into(),
            base_rows: 0,
            base_records: 0,
            sql: "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
                  WHERE Z.price < X.price"
                .into(),
        };
        dir.save_sub_meta("lonely", &meta).unwrap();
        let result = dir.load_subs();
        assert!(matches!(result, Err(ServeError::Input(_))), "{result:?}");
    }

    #[test]
    fn unwritable_data_dir_is_a_usage_error() {
        let result = DataDir::lock(Path::new("/proc/definitely/not/writable"));
        match result {
            Err(ServeError::Usage(_)) => {}
            other => panic!("expected usage error, got {other:?}"),
        }
    }
}
