//! Primary→standby WAL streaming replication: the ack mode, the
//! primary-side shipping queue and bookkeeping, and the wire helpers
//! both ends share.
//!
//! The replication *protocol* rides the ordinary frame codec
//! ([`crate::frame`]) on the standby's listen port, as a family of
//! `REPL` verbs only a `--standby` server answers:
//!
//! ```text
//! REPL HELLO v1                      -> OK repl v1\n<enc-chan> <rows>...
//! REPL OPEN <chan> <spec>            -> OK opened <chan> rows=<n>
//! REPL FRAME <chan> <start> <nrows> <crc>\n<payload>
//!                                    -> OK repl ack <chan> <rows_total>
//! REPL META <id>\n<submeta text>     -> OK repl meta <id>
//! REPL CHECKPOINT <id>\n<checkpoint> -> OK repl checkpoint <id>
//! REPL REMOVE <id>                   -> OK repl remove <id>
//! REPL SUBS <id>...                  -> OK repl subs <kept>
//! ```
//!
//! Every shipped WAL frame carries its start ordinal and a CRC of the
//! payload, so the standby can reject bit-flips (`ERR 3`) and detect
//! gaps (`ERR 4`) without trusting the transport; duplicates (a frame
//! whose rows the standby already holds — the normal overlap between a
//! resync scan and the live queue) are acknowledged idempotently.
//!
//! The shipping thread's session loop lives in `server.rs` (it walks
//! the server's channel registry to resync); this module owns the
//! queue, the per-channel ack watermarks the `--repl-ack sync` feed
//! path blocks on, and the counters `/metrics` exposes as
//! `sqlts_repl_*`.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::frame::{read_frame, write_frame, FrameEvent};

/// When a `--repl-ack sync` FEED must give up waiting for the standby
/// and degrade to async (counted, never an error to the feeder).
pub const SYNC_ACK_TIMEOUT: Duration = Duration::from_secs(2);

/// How a primary acknowledges FEEDs relative to standby shipping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplAck {
    /// FEED acks after the local WAL append/fsync; shipping trails.
    #[default]
    Async,
    /// FEED blocks until the standby acknowledges the frame (semi-sync:
    /// degrades to async, with a counter, if the standby is away).
    Sync,
}

impl std::str::FromStr for ReplAck {
    type Err = String;

    fn from_str(s: &str) -> Result<ReplAck, String> {
        match s {
            "async" => Ok(ReplAck::Async),
            "sync" => Ok(ReplAck::Sync),
            other => Err(format!("unknown --repl-ack '{other}' (async|sync)")),
        }
    }
}

impl std::fmt::Display for ReplAck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplAck::Async => "async",
            ReplAck::Sync => "sync",
        })
    }
}

/// One queued unit of shipping work, in commit order.
#[derive(Debug)]
pub(crate) enum ReplCmd {
    /// A committed WAL record.
    Frame {
        /// Channel name.
        channel: String,
        /// Row ordinal of the frame's first row.
        start: u64,
        /// Rows in the frame.
        nrows: u32,
        /// The raw CSV payload, exactly as appended to the local WAL.
        payload: String,
    },
    /// A channel came into existence (name + schema spec).
    Open { channel: String, spec: String },
    /// A subscription meta was persisted.
    Meta { id: String, text: String },
    /// A subscription checkpoint was persisted.
    Checkpoint { id: String, text: String },
    /// A subscription's durable state was removed.
    Remove { id: String },
    /// The server is going away; the thread should exit.
    Shutdown,
}

/// Shared primary-side replication bookkeeping: the connection flag the
/// feed path gates its queueing on, monotonic counters for `/metrics`,
/// and the per-channel standby ack watermarks `--repl-ack sync` blocks
/// on.
#[derive(Debug, Default)]
pub(crate) struct ReplState {
    /// A shipping session is live (set *before* the resync scan so live
    /// frames queue behind it; the overlap is resolved by idempotent
    /// standby acks).
    pub connected: AtomicBool,
    /// WAL frames shipped to the standby.
    pub frames_sent: AtomicU64,
    /// Standby acknowledgements received.
    pub acks: AtomicU64,
    /// Shipping sessions established (each one begins with a resync).
    pub resyncs: AtomicU64,
    /// Sends or replies that failed and cost the session.
    pub send_errors: AtomicU64,
    /// `--repl-ack sync` FEEDs that degraded to async (standby away or
    /// ack not in time).
    pub sync_degraded: AtomicU64,
    /// Highest standby-acknowledged row ordinal per channel.
    acked: Mutex<HashMap<String, u64>>,
    cv: Condvar,
}

impl ReplState {
    fn acked_guard(&self) -> std::sync::MutexGuard<'_, HashMap<String, u64>> {
        self.acked.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a standby ack for `channel` up to row ordinal `end`
    /// (monotonic) and wake any sync-mode feeders.
    pub fn note_ack(&self, channel: &str, end: u64) {
        let mut acked = self.acked_guard();
        let slot = acked.entry(channel.to_string()).or_insert(0);
        if end > *slot {
            *slot = end;
        }
        drop(acked);
        self.cv.notify_all();
    }

    /// The standby's ack watermark for `channel` (0 if never acked).
    pub fn acked(&self, channel: &str) -> u64 {
        self.acked_guard().get(channel).copied().unwrap_or(0)
    }

    /// Sum of `rows_total - acked` over `rows` = (channel, rows_total):
    /// the replication lag gauge.
    pub fn lag_rows<'a>(&self, rows: impl Iterator<Item = (&'a str, u64)>) -> u64 {
        let acked = self.acked_guard();
        rows.map(|(chan, total)| total.saturating_sub(acked.get(chan).copied().unwrap_or(0)))
            .sum()
    }

    /// Block until the standby has acknowledged `channel` rows up to
    /// `end`, the session drops, or `timeout` passes.  Returns whether
    /// the ack arrived.
    pub fn wait_acked(&self, channel: &str, end: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut acked = self.acked_guard();
        loop {
            if acked.get(channel).copied().unwrap_or(0) >= end {
                return true;
            }
            if !self.connected.load(Ordering::SeqCst) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            acked = self
                .cv
                .wait_timeout(acked, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Flip to disconnected and wake sync-mode feeders so they degrade
    /// immediately instead of riding out their timeout.
    pub fn mark_disconnected(&self) {
        self.connected.store(false, Ordering::SeqCst);
        drop(self.acked_guard());
        self.cv.notify_all();
    }
}

/// A point-in-time view of replication health for `/metrics`,
/// `/status`, and the `STATUS` verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplSnapshot {
    /// `--replicate-to` was configured.
    pub configured: bool,
    /// A shipping session is currently live.
    pub connected: bool,
    /// `--repl-ack sync` is in force.
    pub sync: bool,
    /// WAL frames shipped.
    pub frames_sent: u64,
    /// Standby acks received.
    pub acks: u64,
    /// Shipping sessions established.
    pub resyncs: u64,
    /// Failed sends/replies (each costs a session).
    pub send_errors: u64,
    /// Sync FEEDs that degraded to async.
    pub sync_degraded: u64,
    /// Rows committed locally but not yet standby-acked.
    pub lag_rows: u64,
}

/// The primary-side handle the server holds: a commit-ordered queue
/// into the shipping thread plus the shared [`ReplState`].
#[derive(Debug)]
pub(crate) struct Replicator {
    /// `HOST:PORT` of the standby.
    pub target: String,
    /// FEED acknowledgement mode.
    pub ack: ReplAck,
    tx: Mutex<mpsc::Sender<ReplCmd>>,
    /// Shared with the shipping thread.
    pub state: Arc<ReplState>,
    /// Tells the shipping thread to exit (set by `Server::drop`).
    pub stop: Arc<AtomicBool>,
}

impl Replicator {
    /// A replicator and the receiving end for its shipping thread.
    pub fn new(target: String, ack: ReplAck) -> (Replicator, mpsc::Receiver<ReplCmd>) {
        let (tx, rx) = mpsc::channel();
        (
            Replicator {
                target,
                ack,
                tx: Mutex::new(tx),
                state: Arc::new(ReplState::default()),
                stop: Arc::new(AtomicBool::new(false)),
            },
            rx,
        )
    }

    /// Queue a command if a session is live.  While disconnected the
    /// local WAL is the source of truth and the next resync re-reads it,
    /// so dropping here loses nothing.
    fn offer(&self, cmd: ReplCmd) -> bool {
        if !self.state.connected.load(Ordering::SeqCst) {
            return false;
        }
        self.tx
            .lock()
            .map(|tx| tx.send(cmd).is_ok())
            .unwrap_or(false)
    }

    /// Queue one committed WAL frame.  Call under the channel persist
    /// lock so the queue preserves commit order.
    pub fn offer_frame(&self, channel: &str, start: u64, nrows: u32, payload: &str) -> bool {
        self.offer(ReplCmd::Frame {
            channel: channel.to_string(),
            start,
            nrows,
            payload: payload.to_string(),
        })
    }

    /// Queue a channel-open announcement.
    pub fn offer_open(&self, channel: &str, spec: &str) {
        self.offer(ReplCmd::Open {
            channel: channel.to_string(),
            spec: spec.to_string(),
        });
    }

    /// Queue a subscription meta.
    pub fn offer_meta(&self, id: &str, text: &str) {
        self.offer(ReplCmd::Meta {
            id: id.to_string(),
            text: text.to_string(),
        });
    }

    /// Queue a subscription checkpoint.
    pub fn offer_checkpoint(&self, id: &str, text: &str) {
        self.offer(ReplCmd::Checkpoint {
            id: id.to_string(),
            text: text.to_string(),
        });
    }

    /// Queue a subscription removal.
    pub fn offer_remove(&self, id: &str) {
        self.offer(ReplCmd::Remove { id: id.to_string() });
    }

    /// Stop the shipping thread (idempotent).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.state.mark_disconnected();
        if let Ok(tx) = self.tx.lock() {
            let _ = tx.send(ReplCmd::Shutdown);
        }
    }

    /// Counters + the caller-computed lag gauge.
    pub fn snapshot(&self, lag_rows: u64) -> ReplSnapshot {
        ReplSnapshot {
            configured: true,
            connected: self.state.connected.load(Ordering::SeqCst),
            sync: self.ack == ReplAck::Sync,
            frames_sent: self.state.frames_sent.load(Ordering::Relaxed),
            acks: self.state.acks.load(Ordering::Relaxed),
            resyncs: self.state.resyncs.load(Ordering::Relaxed),
            send_errors: self.state.send_errors.load(Ordering::Relaxed),
            sync_degraded: self.state.sync_degraded.load(Ordering::Relaxed),
            lag_rows,
        }
    }
}

/// Send one replication frame and read the standby's reply.  Any I/O
/// fault, timeout, desync, or `ERR` reply is a session-fatal error
/// string — the caller reconnects and resyncs.  The `repl::send`
/// failpoint fires before the write (detail = payload bytes).
pub(crate) fn send_repl(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    payload: &str,
    max_frame: usize,
) -> Result<String, String> {
    #[cfg(feature = "failpoints")]
    if let Some(sqlts_relation::failpoints::Injected::InjectError) =
        sqlts_relation::failpoints::hit("repl::send", payload.len() as u64)
    {
        return Err("failpoint 'repl::send' injected error".into());
    }
    write_frame(stream, payload).map_err(|e| format!("repl send: {e}"))?;
    match read_frame(reader, max_frame).map_err(|e| format!("repl reply: {e}"))? {
        FrameEvent::Payload(reply) => {
            if reply.starts_with("ERR ") {
                Err(format!("standby refused: {reply}"))
            } else {
                Ok(reply)
            }
        }
        FrameEvent::Eof => Err("standby closed the connection".into()),
        FrameEvent::Oversized { len } => Err(format!("oversized standby reply ({len} bytes)")),
        FrameEvent::BadUtf8 => Err("non-UTF-8 standby reply".into()),
    }
}

/// Parse a `REPL HELLO` reply's per-channel durable row counts:
/// `OK repl v1` followed by one `<enc-name> <rows>` line per channel.
pub(crate) fn parse_hello(reply: &str) -> Result<HashMap<String, u64>, String> {
    let mut lines = reply.lines();
    match lines.next() {
        Some("OK repl v1") => {}
        other => return Err(format!("bad REPL HELLO reply: {other:?}")),
    }
    let mut rows = HashMap::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let (Some(enc), Some(n), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("bad REPL HELLO channel line: {line:?}"));
        };
        let name = crate::recover::decode_name(enc)
            .ok_or_else(|| format!("bad REPL HELLO channel name: {enc:?}"))?;
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad REPL HELLO row count: {line:?}"))?;
        rows.insert(name, n);
    }
    Ok(rows)
}

/// Parse an `OK repl ack <chan> <rows_total>` reply.
pub(crate) fn parse_ack(reply: &str) -> Result<(String, u64), String> {
    let rest = reply
        .strip_prefix("OK repl ack ")
        .ok_or_else(|| format!("bad repl ack: {reply:?}"))?;
    let mut parts = rest.split_whitespace();
    let (Some(chan), Some(end), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!("bad repl ack: {reply:?}"));
    };
    let end: u64 = end
        .parse()
        .map_err(|_| format!("bad repl ack ordinal: {reply:?}"))?;
    Ok((chan.to_string(), end))
}

/// Parse an `OK opened <chan> rows=<n>` reply (shared with feeder
/// clients resuming after a promotion).
pub(crate) fn parse_opened_rows(reply: &str) -> Result<u64, String> {
    let rows = reply
        .rsplit(' ')
        .next()
        .and_then(|tok| tok.strip_prefix("rows="))
        .ok_or_else(|| format!("bad OPEN reply: {reply:?}"))?;
    rows.parse()
        .map_err(|_| format!("bad OPEN rows count: {reply:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_ack_parses_and_displays() {
        assert_eq!("sync".parse::<ReplAck>().unwrap(), ReplAck::Sync);
        assert_eq!("async".parse::<ReplAck>().unwrap(), ReplAck::Async);
        assert!("quorum".parse::<ReplAck>().is_err());
        assert_eq!(ReplAck::Sync.to_string(), "sync");
    }

    #[test]
    fn ack_watermarks_are_monotonic_and_wake_waiters() {
        let state = Arc::new(ReplState::default());
        state.connected.store(true, Ordering::SeqCst);
        state.note_ack("q", 5);
        state.note_ack("q", 3);
        assert_eq!(state.acked("q"), 5);
        assert_eq!(state.lag_rows([("q", 9u64), ("r", 2)].into_iter()), 4 + 2);
        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.wait_acked("q", 8, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        state.note_ack("q", 8);
        assert!(waiter.join().unwrap(), "ack should release the waiter");
        assert!(!state.wait_acked("q", 99, Duration::from_millis(10)));
    }

    #[test]
    fn disconnect_releases_sync_waiters_early() {
        let state = Arc::new(ReplState::default());
        state.connected.store(true, Ordering::SeqCst);
        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let start = Instant::now();
                let acked = state.wait_acked("q", 1, Duration::from_secs(30));
                (acked, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        state.mark_disconnected();
        let (acked, waited) = waiter.join().unwrap();
        assert!(!acked);
        assert!(waited < Duration::from_secs(5), "waited {waited:?}");
    }

    #[test]
    fn hello_and_ack_replies_parse() {
        let rows = parse_hello("OK repl v1\nq 12\nr%20s 0").unwrap();
        assert_eq!(rows.get("q"), Some(&12));
        assert_eq!(rows.get("r s"), Some(&0));
        assert!(parse_hello("OK repl v2").is_err());
        assert_eq!(parse_ack("OK repl ack q 34").unwrap(), ("q".into(), 34));
        assert!(parse_ack("OK fed 3").is_err());
        assert_eq!(parse_opened_rows("OK opened q rows=7").unwrap(), 7);
    }

    #[test]
    fn offers_are_dropped_while_disconnected() {
        let (repl, rx) = Replicator::new("127.0.0.1:1".into(), ReplAck::Async);
        assert!(!repl.offer_frame("q", 0, 1, "IBM,1,50"));
        repl.state.connected.store(true, Ordering::SeqCst);
        assert!(repl.offer_frame("q", 0, 1, "IBM,1,50"));
        let cmd = rx.try_recv().unwrap();
        assert!(matches!(cmd, ReplCmd::Frame { start: 0, nrows: 1, .. }));
        assert!(rx.try_recv().is_err(), "disconnected offer must not queue");
    }
}
