//! The sampling profiler behind `--sample-profile`: a single thread
//! that periodically snapshots every live subscription worker's
//! published [`WorkerPhase`](sqlts_core::WorkerPhase) tag and folds the
//! samples into collapsed-stack format (`frame;frame;frame count`, one
//! stack per line) consumable by standard flamegraph tooling.
//!
//! This is deliberately *not* OS-level stack unwinding: no signals, no
//! ptrace, no frame-pointer walking.  Each worker already publishes a
//! cheap atomic phase tag on every command (see `sqlts_core::multiplex`);
//! sampling it is one relaxed load per subscription per tick, so the
//! profiler observes the server without perturbing it — the armed run's
//! query output stays byte-identical to an unarmed run.
//!
//! Stacks have the fixed shape `serve;<sub-id>;<phase>` (or
//! `serve;idle` when no subscription is live), so sample counts at a
//! given tick always sum to `max(1, live subscriptions)` regardless of
//! how many OS threads the server happens to run — the aggregation is
//! thread-count-invariant by construction.
//!
//! The profile file is rewritten atomically (tmp+rename, the same
//! [`atomic_write`] the checkpoints use) every [`FLUSH_EVERY_TICKS`]
//! ticks and at stop, so a reader never sees a torn file and a killed
//! process loses at most a few seconds of samples.

use sqlts_core::atomic_write;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Ticks between atomic rewrites of the profile file.
const FLUSH_EVERY_TICKS: u64 = 64;

/// A running sampling-profiler thread.  Stop it with
/// [`SamplingProfiler::stop`]; dropping without stopping also flushes
/// (the thread notices the flag at its next tick).
pub struct SamplingProfiler {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl SamplingProfiler {
    /// Spawn the profiler writing to `path` at `sample_hz` samples per
    /// second (clamped to 1..=1000).  `sample` fills its argument with
    /// one `(subscription id, phase name)` pair per live worker; it is
    /// called once per tick on the profiler thread.
    pub fn spawn<F>(path: PathBuf, sample_hz: u32, sample: F) -> SamplingProfiler
    where
        F: Fn(&mut Vec<(String, &'static str)>) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("sqlts-profiler".into())
            .spawn(move || run(&path, sample_hz, &sample, &thread_stop))
            .ok();
        SamplingProfiler { stop, join }
    }

    /// Signal the thread, wait for its final flush, and return whether
    /// the thread exited cleanly.
    pub fn stop(mut self) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        self.join.take().is_some_and(|join| join.join().is_ok())
    }
}

impl Drop for SamplingProfiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn run<F>(path: &Path, sample_hz: u32, sample: &F, stop: &AtomicBool)
where
    F: Fn(&mut Vec<(String, &'static str)>),
{
    let interval = Duration::from_nanos(1_000_000_000 / u64::from(sample_hz.clamp(1, 1000)));
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut scratch: Vec<(String, &'static str)> = Vec::new();
    let mut ticks = 0u64;
    let mut dirty = false;
    while !stop.load(Ordering::SeqCst) {
        scratch.clear();
        sample(&mut scratch);
        if scratch.is_empty() {
            *counts.entry("serve;idle".to_string()).or_insert(0) += 1;
        } else {
            for (id, phase) in &scratch {
                *counts.entry(format!("serve;{id};{phase}")).or_insert(0) += 1;
            }
        }
        dirty = true;
        ticks += 1;
        if ticks % FLUSH_EVERY_TICKS == 0 {
            flush(path, &counts);
            dirty = false;
        }
        std::thread::sleep(interval);
    }
    if dirty || ticks == 0 {
        flush(path, &counts);
    }
}

/// Rewrite the collapsed-stack file atomically, stacks sorted so the
/// output is deterministic for a given sample multiset.
fn flush(path: &Path, counts: &HashMap<String, u64>) {
    let mut stacks: Vec<(&String, &u64)> = counts.iter().collect();
    stacks.sort();
    let mut out = String::with_capacity(stacks.len() * 32);
    for (stack, count) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    let _ = atomic_write(path, out.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-profiler-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn samples_fold_into_collapsed_stacks_and_flush_on_stop() {
        let path = temp_path("busy.folded");
        let profiler = SamplingProfiler::spawn(path.clone(), 1000, |out| {
            out.push(("s1".to_string(), "feed"));
            out.push(("s2".to_string(), "idle"));
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(profiler.stop(), "profiler thread must join cleanly");
        let text = std::fs::read_to_string(&path).unwrap();
        let mut seen_feed = 0u64;
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack SP count");
            assert!(stack.starts_with("serve;"), "{line}");
            assert!(
                !stack.contains(' '),
                "frames must not contain spaces: {line}"
            );
            let n: u64 = count.parse().expect("count parses");
            assert!(n > 0);
            if stack == "serve;s1;feed" {
                seen_feed = n;
            }
        }
        assert!(seen_feed > 0, "expected serve;s1;feed in:\n{text}");
        // Both tenants tick together, so their totals match exactly.
        let totals: Vec<u64> = text
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert_eq!(totals.len(), 2, "{text}");
        assert_eq!(totals[0], totals[1], "{text}");
    }

    #[test]
    fn empty_registry_still_writes_an_idle_stack() {
        let path = temp_path("idle.folded");
        let profiler = SamplingProfiler::spawn(path.clone(), 500, |_| {});
        std::thread::sleep(Duration::from_millis(20));
        assert!(profiler.stop());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().any(|l| l.starts_with("serve;idle ")), "{text}");
    }
}
