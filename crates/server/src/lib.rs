#![warn(missing_docs)]

//! **sqlts-server** — a multi-tenant query server for SQL-TS sequence
//! queries (the reproduction's network layer; the paper's optimizer and
//! engines live in [`sqlts_core`]).
//!
//! The server speaks a length-prefixed framed text protocol over TCP
//! (see [`frame`] for the codec and [`server`] for the verb grammar):
//! clients `OPEN` named, schema-typed input channels, `SUBSCRIBE`
//! standing queries onto them, `FEED` CSV rows that fan out to every
//! subscription on the channel, and collect results with `UNSUBSCRIBE` —
//! partial, exit-coded results when a subscription's resource governor
//! trips.  `CHECKPOINT`/`RESUME` ride the `sqlts-checkpoint v1` codec
//! bit-identically, so a client can disconnect and continue elsewhere.
//! The same port answers HTTP `GET /metrics` with a Prometheus
//! exposition ([`metrics`]): server counters, live per-tenant gauges and
//! the most recent finished subscriptions' execution profiles.
//!
//! Zero dependencies beyond `std` and the workspace's own crates.

pub mod frame;
pub mod metrics;
pub mod server;

pub use frame::{read_frame, write_frame, FrameEvent, FrameFatal};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig};
