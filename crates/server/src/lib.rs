#![warn(missing_docs)]

//! **sqlts-server** — a multi-tenant query server for SQL-TS sequence
//! queries (the reproduction's network layer; the paper's optimizer and
//! engines live in [`sqlts_core`]).
//!
//! The server speaks a length-prefixed framed text protocol over TCP
//! (see [`frame`] for the codec and [`server`] for the verb grammar):
//! clients `OPEN` named, schema-typed input channels, `SUBSCRIBE`
//! standing queries onto them, `FEED` CSV rows that fan out to every
//! subscription on the channel, and collect results with `UNSUBSCRIBE` —
//! partial, exit-coded results when a subscription's resource governor
//! trips.  `CHECKPOINT`/`RESUME` ride the `sqlts-checkpoint v1` codec
//! bit-identically, so a client can disconnect and continue elsewhere.
//! The same port answers HTTP `GET /metrics` with a Prometheus
//! exposition ([`metrics`]): server counters, hot-path latency
//! histograms, live per-tenant gauges and the most recent finished
//! subscriptions' execution profiles — and `GET /status` with the same
//! live state as one JSON document.  With `--log` the server appends a
//! structured span log of its hot path (accept, frame decode, WAL
//! append, fsync, fan-out, snapshot, recovery, drain); with
//! `--sample-profile` a sampling thread ([`profiler`]) folds every
//! worker's published phase tag into flamegraph-ready collapsed stacks.
//!
//! With `--data-dir` the server is crash-safe: accepted feeds append to
//! per-channel write-ahead logs ([`wal`]) before fan-out, subscription
//! checkpoints snapshot atomically on a configurable cadence, and a
//! restart recovers channels, subscriptions and in-flight rows
//! byte-identically ([`recover`]).
//!
//! Zero dependencies beyond `std` and the workspace's own crates.

pub mod frame;
pub mod metrics;
pub mod profiler;
pub mod recover;
pub mod replicate;
pub mod server;
pub mod wal;

pub use frame::{read_frame, read_frame_timed, write_frame, FrameEvent, FrameFatal};
pub use metrics::{status_json, LatencyHistograms, LatencyOp, ServerMetrics, SubStatusView};
pub use profiler::SamplingProfiler;
pub use recover::{DataDir, ServeError, SubMeta};
pub use replicate::{ReplAck, ReplSnapshot};
pub use server::{RecoveryReport, Server, ServerConfig, SharedMatcherMode};
// Re-exported so embedders configuring `ServerConfig::log_level` /
// `log_format` need not depend on the trace crate directly.
pub use sqlts_trace::{Level, LogFormat, SpanLog};
pub use wal::{
    read_frames_from, scan_wal, segment_path, ChannelWal, FsyncPolicy, GroupCommit, WalError,
    WalFrame, WalScan,
};
