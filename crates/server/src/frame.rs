//! The length-prefixed frame codec both directions of the wire protocol
//! speak.
//!
//! ```text
//! frame := LENGTH SP PAYLOAD LF
//! ```
//!
//! `LENGTH` is the payload's byte count as ASCII decimal, `PAYLOAD` is
//! UTF-8 text that may itself contain newlines (multi-line verbs such as
//! `SUBSCRIBE` and `FEED` depend on this), and the trailing LF is a frame
//! check, not a terminator — the length alone delimits the payload.
//!
//! The decoder distinguishes **recoverable** faults (a frame that is too
//! large, or not UTF-8: the payload is drained from the socket and the
//! connection keeps going, so one bad frame costs an error reply rather
//! than a disconnect) from **fatal** ones (a corrupt length header: framing
//! is lost and the connection must close).

use std::io::{self, BufRead, Read, Write};

/// Hard ceiling on the length header itself (20 digits covers `u64::MAX`);
/// anything longer is a corrupt header, not a big frame.
const MAX_HEADER_DIGITS: usize = 20;

/// One decode step's outcome when framing survived.
#[derive(Debug)]
pub enum FrameEvent {
    /// A well-formed frame's payload.
    Payload(String),
    /// The frame declared more bytes than the configured cap; the payload
    /// was read and discarded, so the stream is still in sync.
    Oversized {
        /// The declared payload length.
        len: u64,
    },
    /// The frame was well-delimited but not valid UTF-8 (fully consumed).
    BadUtf8,
    /// Clean end of stream (EOF exactly on a frame boundary).
    Eof,
}

/// A framing failure the connection cannot recover from.
#[derive(Debug)]
pub enum FrameFatal {
    /// Underlying socket error (including EOF mid-frame).
    Io(io::Error),
    /// The length header was not `digits SP`, or the frame check byte was
    /// not LF: the byte stream is no longer frame-aligned.
    Desync(String),
}

impl std::fmt::Display for FrameFatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFatal::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameFatal::Desync(why) => write!(f, "frame desync: {why}"),
        }
    }
}

impl std::error::Error for FrameFatal {}

impl From<io::Error> for FrameFatal {
    fn from(e: io::Error) -> FrameFatal {
        FrameFatal::Io(e)
    }
}

fn read_byte(r: &mut impl BufRead) -> Result<Option<u8>, FrameFatal> {
    let mut b = [0u8; 1];
    loop {
        return match r.read(&mut b) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(b[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => Err(FrameFatal::Io(e)),
        };
    }
}

/// Decode one frame.  `max_payload` caps how many payload bytes are
/// buffered; larger frames are drained and reported as
/// [`FrameEvent::Oversized`].
pub fn read_frame(r: &mut impl BufRead, max_payload: usize) -> Result<FrameEvent, FrameFatal> {
    Ok(read_frame_timed(r, max_payload)?.0)
}

/// [`read_frame`] plus the nanoseconds spent decoding, measured from the
/// *first header byte* — the idle wait for a frame to start is the
/// client's think time, not decode cost, and must not pollute the
/// server's frame-decode latency histogram.  `Eof` reports 0.
pub fn read_frame_timed(
    r: &mut impl BufRead,
    max_payload: usize,
) -> Result<(FrameEvent, u64), FrameFatal> {
    // Length header: ASCII digits up to the separating space.  EOF before
    // the first digit is a clean end of stream.
    let mut len: u64 = 0;
    let mut digits = 0usize;
    let mut started: Option<std::time::Instant> = None;
    loop {
        let b = match read_byte(r)? {
            None if digits == 0 => return Ok((FrameEvent::Eof, 0)),
            None => {
                return Err(FrameFatal::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Some(b) => b,
        };
        if started.is_none() {
            started = Some(std::time::Instant::now());
        }
        match b {
            b'0'..=b'9' => {
                digits += 1;
                if digits > MAX_HEADER_DIGITS {
                    return Err(FrameFatal::Desync("length header too long".into()));
                }
                len = len
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(u64::from(b - b'0')))
                    .ok_or_else(|| FrameFatal::Desync("length header overflows u64".into()))?;
            }
            b' ' if digits > 0 => break,
            other => {
                return Err(FrameFatal::Desync(format!(
                    "unexpected byte 0x{other:02x} in frame header"
                )))
            }
        }
    }
    let elapsed = move || started.map_or(0, |s| s.elapsed().as_nanos() as u64);
    if len > max_payload as u64 {
        // Drain payload + frame-check LF so the next frame starts clean.
        let drained = io::copy(&mut r.take(len + 1), &mut io::sink())?;
        if drained != len + 1 {
            return Err(FrameFatal::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF while draining oversized frame",
            )));
        }
        return Ok((FrameEvent::Oversized { len }, elapsed()));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match read_byte(r)? {
        Some(b'\n') => {}
        Some(other) => {
            return Err(FrameFatal::Desync(format!(
                "frame check byte is 0x{other:02x}, not LF"
            )))
        }
        None => {
            return Err(FrameFatal::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF at frame check byte",
            )))
        }
    }
    match String::from_utf8(payload) {
        Ok(text) => Ok((FrameEvent::Payload(text), elapsed())),
        Err(_) => Ok((FrameEvent::BadUtf8, elapsed())),
    }
}

/// Encode one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(w, "{} ", payload.len())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8], max: usize) -> Vec<String> {
        let mut r = io::BufReader::new(bytes);
        let mut out = Vec::new();
        loop {
            match read_frame(&mut r, max).unwrap() {
                FrameEvent::Payload(p) => out.push(p),
                FrameEvent::Oversized { len } => out.push(format!("<oversized {len}>")),
                FrameEvent::BadUtf8 => out.push("<bad-utf8>".into()),
                FrameEvent::Eof => return out,
            }
        }
    }

    #[test]
    fn round_trips_including_embedded_newlines() {
        let mut wire = Vec::new();
        for payload in ["PING", "", "FEED q\nIBM,1,50\nIBM,2,49", "byte-exact ✓"] {
            write_frame(&mut wire, payload).unwrap();
        }
        assert_eq!(
            decode_all(&wire, 1 << 20),
            vec!["PING", "", "FEED q\nIBM,1,50\nIBM,2,49", "byte-exact ✓"]
        );
    }

    #[test]
    fn oversized_frame_is_drained_and_stream_stays_in_sync() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &"x".repeat(100)).unwrap();
        write_frame(&mut wire, "PING").unwrap();
        assert_eq!(decode_all(&wire, 16), vec!["<oversized 100>", "PING"]);
    }

    #[test]
    fn bad_utf8_is_recoverable() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"3 \xff\xfe\xfd\n");
        write_frame(&mut wire, "PING").unwrap();
        assert_eq!(decode_all(&wire, 1 << 20), vec!["<bad-utf8>", "PING"]);
    }

    #[test]
    fn header_corruption_is_fatal() {
        for wire in [&b"abc PING\n"[..], b"4x PING\n", b"4 PINGX"] {
            let mut r = io::BufReader::new(wire);
            match read_frame(&mut r, 1 << 20) {
                Err(FrameFatal::Desync(_)) => {}
                other => panic!("expected desync for {wire:?}, got {other:?}"),
            }
        }
        // A huge header that would overflow u64 is desync, not a panic.
        let mut r = io::BufReader::new(&b"99999999999999999999999 x\n"[..]);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameFatal::Desync(_))
        ));
    }

    #[test]
    fn timed_decode_reports_duration_and_zero_at_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "PING").unwrap();
        let mut r = io::BufReader::new(&wire[..]);
        let (event, ns) = read_frame_timed(&mut r, 1 << 20).unwrap();
        assert!(matches!(event, FrameEvent::Payload(p) if p == "PING"));
        assert!(ns < 1_000_000_000, "in-memory decode took {ns}ns");
        let (event, ns) = read_frame_timed(&mut r, 1 << 20).unwrap();
        assert!(matches!(event, FrameEvent::Eof));
        assert_eq!(ns, 0, "EOF charges no decode time");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut r = io::BufReader::new(&b"10 short"[..]);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameFatal::Io(_))
        ));
    }
}
