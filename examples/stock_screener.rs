//! A multi-stock screener: run the paper's Example 2 — *maximal periods
//! in which a stock fell more than 50%* — over a portfolio of simulated
//! stocks, demonstrating `CLUSTER BY` stream separation, the star
//! construct, `previous` navigation, and non-local conditions
//! (`Z.previous.price < 0.5 * X.price` reaches across the star).
//!
//! ```sh
//! cargo run --release --example stock_screener
//! ```

use sqlts_core::{execute_query, EngineKind, ExecOptions, FirstTuplePolicy};
use sqlts_datagen::{gbm_series, prices_to_table, GbmParams};
use sqlts_relation::{Date, Table};

fn main() {
    // A portfolio: boring large caps and two volatile small caps.
    let portfolio = [
        ("BLUE", 120.0, 0.07, 0.18, 1u64),
        ("STEADY", 80.0, 0.05, 0.12, 2),
        ("MEME", 40.0, -0.10, 1.40, 3),
        ("ROCKET", 15.0, 0.00, 1.60, 4),
    ];
    let mut table = Table::new(sqlts_datagen::quote_schema());
    for (name, start, drift, vol, seed) in portfolio {
        let params = GbmParams {
            start,
            drift,
            volatility: vol,
            days_per_year: 252.0,
        };
        let prices = gbm_series(&params, 756, seed); // three years
        let t = prices_to_table(name, Date::from_ymd(1997, 1, 2), &prices);
        for row in t.rows() {
            table.push_row(row.to_vec()).expect("row fits");
        }
    }

    // Example 2 of the paper: maximal falling periods losing > 50%.
    let query = "SELECT X.name, X.date AS start_date, Z.previous.date AS end_date \
                 FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y, Z) \
                 WHERE Y.price < Y.previous.price \
                 AND Z.previous.price < 0.5 * X.price";

    let result = execute_query(
        query,
        &table,
        &ExecOptions {
            engine: EngineKind::Ops,
            policy: FirstTuplePolicy::Fail,
            ..Default::default()
        },
    )
    .expect("query executes");

    println!("crash periods (>50% drawdown over consecutive down days):");
    print!("{}", result.table.to_csv_string());
    println!("\n{}", result.stats);
}
