//! Peek inside the optimizer: print the θ/φ matrices, the S matrix and
//! the shift/next tables for the paper's worked examples (Examples 4–7
//! and Example 9), exactly the artifacts the paper derives by hand.
//!
//! ```sh
//! cargo run --example explain_optimizer
//! ```

use sqlts_core::{compile, explain, CompileOptions};

const EXAMPLE4: &str = "\
SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
WHERE A.price < A.previous.price \
AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
AND C.price > C.previous.price AND C.price < 52 \
AND D.price > D.previous.price";

const EXAMPLE9: &str = "\
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, Y, *Z, *T, U, *V, S) \
WHERE X.price > X.previous.price \
AND 30 < Y.price AND Y.price < 40 \
AND Z.price < Z.previous.price \
AND T.price > T.previous.price \
AND 35 < U.price AND U.price < 40 \
AND V.price < V.previous.price \
AND S.price < 30";

fn main() {
    let schema = sqlts_datagen::quote_schema();
    let opts = CompileOptions::default();

    println!("===== Example 4 (star-free; paper Examples 5-7) =====");
    let q4 = compile(EXAMPLE4, &schema, &opts).expect("Example 4 compiles");
    println!("{}", explain(&q4));
    println!("paper: shift = [1, 1, 1, 3], next = [0, 1, 2, 1]\n");

    println!("===== Example 9 (stars; paper Section 5.1) =====");
    let q9 = compile(EXAMPLE9, &schema, &opts).expect("Example 9 compiles");
    println!("{}", explain(&q9));
    println!("paper: shift(6) = 3, next(6) = 1");
}
