//! The paper's headline workload (§7, Example 10): find *relaxed double
//! bottoms* — a local maximum surrounded by two local minima, treating
//! moves under 2% as flat — in 25 years of (simulated) DJIA daily closes,
//! and compare the engines' costs.
//!
//! ```sh
//! cargo run --release --example double_bottom [seed]
//! ```

use sqlts_core::{execute_query, EngineKind, ExecOptions, FirstTuplePolicy};

const DOUBLE_BOTTOM: &str = "\
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
FROM djia SEQUENCE BY date AS (X, *Y, *Z, *T, *U, *V, *W, *R, S) \
WHERE X.price >= 0.98 * X.previous.price \
AND Y.price < 0.98 * Y.previous.price \
AND 0.98 * Z.previous.price < Z.price AND Z.price < 1.02 * Z.previous.price \
AND T.price > 1.02 * T.previous.price \
AND 0.98 * U.previous.price < U.price AND U.price < 1.02 * U.previous.price \
AND V.price < 0.98 * V.previous.price \
AND 0.98 * W.previous.price < W.price AND W.price < 1.02 * W.previous.price \
AND R.price > 1.02 * R.previous.price \
AND S.price <= 1.02 * S.previous.price";

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2001);
    let table = sqlts_datagen::djia_series(seed);
    println!(
        "simulated DJIA: {} trading days (seed {seed}), first close {}, last close {}",
        table.len(),
        table.cell(0, 2),
        table.cell(table.len() - 1, 2),
    );

    let mut costs = Vec::new();
    for engine in [
        EngineKind::NaiveBacktrack,
        EngineKind::Naive,
        EngineKind::Ops,
    ] {
        let result = execute_query(
            DOUBLE_BOTTOM,
            &table,
            &ExecOptions {
                engine,
                policy: FirstTuplePolicy::VacuousTrue,
                ..Default::default()
            },
        )
        .expect("query executes");
        println!(
            "\n{engine:?}: {} predicate tests, {} double bottoms",
            result.stats.predicate_tests, result.stats.matches
        );
        if engine == EngineKind::Ops {
            println!("double bottoms found (leg-up start / last flat day):");
            print!("{}", result.table.to_csv_string());
        }
        costs.push(result.stats.predicate_tests);
    }
    println!(
        "\nspeedup OPS vs backtracking naive: {:.1}x, vs greedy naive: {:.2}x",
        costs[0] as f64 / costs[2] as f64,
        costs[1] as f64 / costs[2] as f64
    );
}
