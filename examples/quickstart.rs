//! Quickstart: the paper's Example 1 on a small in-memory quote table.
//!
//! Finds stocks that went up by 15% or more one day, and then down by 20%
//! or more the next day.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sqlts_core::{execute_query, EngineKind, ExecOptions};
use sqlts_relation::{ColumnType, Schema, Table};

fn main() {
    // The paper's quote table: CREATE TABLE quote(name, date, price).
    let schema = Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .expect("schema is valid");

    let table = Table::from_csv_str(
        schema,
        "name,date,price\n\
         INTC,1999-01-25,60\n\
         INTC,1999-01-26,63.5\n\
         INTC,1999-01-27,62\n\
         IBM,1999-01-25,81\n\
         IBM,1999-01-26,80.50\n\
         IBM,1999-01-27,84\n\
         ACME,1999-01-25,10\n\
         ACME,1999-01-26,12\n\
         ACME,1999-01-27,9\n",
    )
    .expect("CSV parses");

    // Example 1 of the paper, verbatim.
    let query = "SELECT X.name \
                 FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
                 WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price";

    let result = execute_query(
        query,
        &table,
        &ExecOptions {
            engine: EngineKind::Ops,
            ..Default::default()
        },
    )
    .expect("query executes");

    println!("query: {query}\n");
    print!("{}", result.table.to_csv_string());
    println!("\n{}", result.stats);
}
