//! Shared pattern-set execution must be *observationally invisible*:
//! `execute_set` over N standing queries returns, slot by slot, exactly
//! what N solo `execute` calls return — rows, stats, armed profiles,
//! governor trips — while physically evaluating strictly fewer
//! predicates when the patterns share structure.
//!
//! Random pattern sets (mixed shared families and unrelated queries)
//! are swept across engines, policies and thread counts; a streamed
//! variant checkpoints every member at every feed boundary and resumes
//! through the `sqlts-checkpoint v1` text codec.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlts_core::{
    compile, execute, execute_set, CompileOptions, CompiledQuery, EngineKind, ExecError,
    ExecOptions, FirstTuplePolicy, Governor, Instrument, SessionCheckpoint, SharedStreamSession,
    StreamOptions,
};
use sqlts_datagen::{integer_walk, quote_schema};
use sqlts_relation::{Date, Table, Value};
use std::num::NonZeroUsize;

/// Predicate alphabet.  The first block is purely local with `Cur`
/// anchors only — internable into shared element classes; the second
/// block reaches back via `previous`, forcing those elements solo.
/// Equivalence must hold for any mix.
const PREDICATES: &[&str] = &[
    "{v}.price < 5",
    "{v}.price > 5",
    "{v}.price >= 3 AND {v}.price <= 8",
    "{v}.price = 4",
    "{v}.price > 2",
    "{v}.price <> 7",
    "{v}.price < {v}.previous.price",
    "{v}.price > {v}.previous.price",
];

/// A random multi-symbol table: `clusters` independent integer walks
/// interleaved under distinct names.
fn random_clustered_table(rng: &mut SmallRng, clusters: usize) -> Table {
    let mut table = Table::new(quote_schema());
    for c in 0..clusters {
        let name = format!("T{c}");
        let n = rng.gen_range(0..200);
        let walk = integer_walk(n, 1, 10, 2, rng.gen::<u64>());
        let mut day = Date::from_ymd(1990, 1, 1);
        for p in walk {
            while day.is_weekend() {
                day = day.plus_days(1);
            }
            table
                .push_row(vec![
                    Value::from(name.as_str()),
                    Value::Date(day),
                    Value::from(p),
                ])
                .unwrap();
            day = day.plus_days(1);
        }
    }
    table
}

fn random_query(rng: &mut SmallRng) -> String {
    let m = rng.gen_range(1..=4);
    let mut vars = Vec::new();
    let mut conds = Vec::new();
    for i in 0..m {
        let name = format!("V{i}");
        let star = rng.gen_bool(0.3);
        vars.push(if star {
            format!("*{name}")
        } else {
            name.clone()
        });
        for _ in 0..rng.gen_range(0..=2) {
            let p = PREDICATES[rng.gen_range(0..PREDICATES.len())];
            conds.push(format!("({})", p.replace("{v}", &name)));
        }
    }
    let select = if vars[0].starts_with('*') {
        "FIRST(V0).date".to_string()
    } else {
        "V0.date".to_string()
    };
    let mut q = format!(
        "SELECT {select} FROM t CLUSTER BY name SEQUENCE BY date AS ({})",
        vars.join(", ")
    );
    if !conds.is_empty() {
        q.push_str(&format!(" WHERE {}", conds.join(" AND ")));
    }
    q
}

/// A random pattern set.  Half the time a *family* — one random body
/// plus a member-specific tail predicate, the shape that exercises
/// cross-query sharing — and half the time unrelated random queries
/// (each still equivalent to its solo run, just without savings).
fn random_set(rng: &mut SmallRng, k: usize) -> Vec<String> {
    if rng.gen_bool(0.5) {
        let base = random_query(rng);
        let glue = if base.contains(" WHERE ") {
            " AND "
        } else {
            " WHERE "
        };
        (0..k)
            .map(|i| format!("{base}{glue}(V0.price < {})", 4 + i))
            .collect()
    } else {
        (0..k).map(|_| random_query(rng)).collect()
    }
}

fn compile_set(texts: &[String]) -> Vec<CompiledQuery> {
    texts
        .iter()
        .map(|t| {
            compile(t, &quote_schema(), &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{t}: {e}"))
        })
        .collect()
}

/// The invisibility oracle: run every query solo, run the set shared,
/// and demand slot-by-slot bit-identity — Ok results match on rows,
/// stats and (when armed) profiles; governed slots match on trip
/// reason, trip step and the partial result.  Returns the solo
/// predicate-test sum for savings assertions.
fn assert_set_matches_solo(
    queries: &[CompiledQuery],
    table: &Table,
    exec: &ExecOptions,
    ctx: &str,
) -> u64 {
    let set = execute_set(queries, table, exec);
    assert_eq!(set.results.len(), queries.len(), "{ctx}");
    let mut solo_sum = 0u64;
    for (i, (query, shared)) in queries.iter().zip(&set.results).enumerate() {
        let solo = execute(query, table, exec);
        match (solo, shared) {
            (Ok(solo), Ok(shared)) => {
                solo_sum += solo.stats.predicate_tests;
                assert_eq!(shared.table, solo.table, "slot {i} rows: {ctx}");
                assert_eq!(shared.stats, solo.stats, "slot {i} stats: {ctx}");
                match (&solo.profile, &shared.profile) {
                    (Some(sp), Some(hp)) => {
                        assert_eq!(hp.clusters, sp.clusters, "slot {i} profile: {ctx}");
                        assert_eq!(hp.totals, sp.totals, "slot {i} profile: {ctx}");
                        assert_eq!(hp.tuples, sp.tuples, "slot {i} profile: {ctx}");
                    }
                    (None, None) => {}
                    _ => panic!("slot {i}: profile armed on one side only: {ctx}"),
                }
            }
            (
                Err(ExecError::Governed {
                    trip: st,
                    partial: sp,
                }),
                Err(ExecError::Governed {
                    trip: ht,
                    partial: hp,
                }),
            ) => {
                solo_sum += sp.stats.predicate_tests;
                assert_eq!(ht.reason, st.reason, "slot {i} trip reason: {ctx}");
                assert_eq!(ht.steps, st.steps, "slot {i} trip step: {ctx}");
                assert_eq!(ht.matches, st.matches, "slot {i} trip matches: {ctx}");
                assert_eq!(hp.table, sp.table, "slot {i} partial rows: {ctx}");
                assert_eq!(hp.stats, sp.stats, "slot {i} partial stats: {ctx}");
            }
            (solo, shared) => panic!(
                "slot {i}: solo {:?} vs shared {:?} diverged: {ctx}",
                solo.as_ref()
                    .map(|r| r.table.len())
                    .map_err(ToString::to_string),
                shared
                    .as_ref()
                    .map(|r| r.table.len())
                    .map_err(ToString::to_string),
            ),
        }
    }
    assert_eq!(
        set.stats.tests_logical, solo_sum,
        "logical tests must equal the solo sum: {ctx}"
    );
    assert_eq!(
        set.stats.tests_evaluated + set.stats.tests_saved,
        set.stats.tests_logical,
        "counter ledger must balance: {ctx}"
    );
    solo_sum
}

/// Property: for random pattern sets across engines, policies and
/// thread counts, the shared pass is bit-identical to solo runs.
fn fuzz_set(seed: u64, rounds: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interesting = 0u32;
    for round in 0..rounds {
        let k = rng.gen_range(2..=6);
        let texts = random_set(&mut rng, k);
        let queries = compile_set(&texts);
        let clusters = rng.gen_range(1..=4);
        let table = random_clustered_table(&mut rng, clusters);
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };
        for threads in [1usize, 4] {
            let exec = ExecOptions {
                engine,
                policy,
                threads: NonZeroUsize::new(threads).unwrap(),
                instrument: Instrument::tracing(),
                ..Default::default()
            };
            let ctx = format!(
                "round {round} ({engine:?}, {policy:?}, threads={threads}):\n{}",
                texts.join("\n")
            );
            let solo_sum = assert_set_matches_solo(&queries, &table, &exec, &ctx);
            if solo_sum > 0 {
                interesting += 1;
            }
        }
    }
    assert!(
        interesting > rounds / 4,
        "only {interesting}/{rounds} rounds did any work; generator is too cold"
    );
}

#[test]
fn random_pattern_sets_are_bit_identical_to_solo_runs() {
    fuzz_set(0x5E7A, 60);
}

#[test]
fn random_pattern_sets_are_bit_identical_to_solo_runs_second_seed() {
    fuzz_set(0xB17B17, 60);
}

/// The deterministic prefix-sharing family from the acceptance
/// criterion: identical bodies, member-specific tail constant.
fn prefix_family(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| {
            format!(
                "SELECT V0.date FROM t CLUSTER BY name SEQUENCE BY date AS (V0, V1, V2) \
                 WHERE V0.price >= 3 AND V1.price > 2 AND V2.price < {}",
                4 + i
            )
        })
        .collect()
}

/// Acceptance: over ≥ 8 prefix-sharing queries the shared pass performs
/// strictly fewer physical predicate tests than the solo sum, while the
/// logical ledger still charges exactly the solo sum.
#[test]
fn shared_set_strictly_saves_predicate_tests() {
    let mut rng = SmallRng::seed_from_u64(0x5A71465);
    let texts = prefix_family(8);
    let queries = compile_set(&texts);
    let table = random_clustered_table(&mut rng, 3);
    for threads in [1usize, 4] {
        let exec = ExecOptions {
            engine: EngineKind::Ops,
            threads: NonZeroUsize::new(threads).unwrap(),
            ..Default::default()
        };
        let ctx = format!("threads={threads}");
        let solo_sum = assert_set_matches_solo(&queries, &table, &exec, &ctx);
        let set = execute_set(&queries, &table, &exec);
        assert!(solo_sum > 0, "family found no work to share");
        assert_eq!(set.stats.tests_logical, solo_sum, "{ctx}");
        assert!(
            set.stats.tests_evaluated < solo_sum,
            "shared pass must evaluate strictly less than {solo_sum}, got {}: {ctx}",
            set.stats.tests_evaluated
        );
        assert!(set.stats.tests_shared > 0, "{ctx}");
    }
}

/// Satellite: the governor's per-query accounting is unchanged under
/// sharing — a `--max-steps` budget trips at exactly the same step,
/// with exactly the same partial result, whether the query runs solo or
/// inside a shared set.  Swept over budgets from zero to past the full
/// run, so every slot is exercised both tripped and untripped.
#[test]
fn governor_trips_at_the_same_step_shared_or_not() {
    let mut rng = SmallRng::seed_from_u64(0x60B5E7);
    let texts = prefix_family(6);
    let queries = compile_set(&texts);
    let table = random_clustered_table(&mut rng, 3);
    let full_steps: Vec<u64> = queries
        .iter()
        .map(|q| {
            execute(q, &table, &ExecOptions::default())
                .unwrap()
                .stats
                .predicate_tests
        })
        .collect();
    let max = *full_steps.iter().max().unwrap();
    assert!(max > 8, "family too small to exercise budgets");
    let mut tripped_budgets = 0u32;
    for budget in [0, 1, max / 7, max / 3, max / 2, max - 1, max + 16] {
        let exec = ExecOptions {
            engine: EngineKind::Ops,
            governor: Governor::unlimited().with_max_steps(budget),
            ..Default::default()
        };
        let ctx = format!("max_steps={budget}");
        assert_set_matches_solo(&queries, &table, &exec, &ctx);
        let set = execute_set(&queries, &table, &exec);
        if set.results.iter().any(Result::is_err) {
            tripped_budgets += 1;
        }
    }
    assert!(tripped_budgets >= 3, "budget sweep never tripped");
}

/// Property: a [`SharedStreamSession`] fed row by row finishes
/// bit-identical to the batch shared pass — and a session checkpointed
/// at *every* feed boundary (each member's plain v1 checkpoint
/// round-tripped through the text codec) resumes to the same rows and
/// stats, with the memo cold but the ledger still balanced.
fn fuzz_shared_stream(seed: u64, rounds: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 0..rounds {
        let k = rng.gen_range(2..=4);
        let texts = random_set(&mut rng, k);
        let queries = compile_set(&texts);
        let clusters = rng.gen_range(1..=3);
        let table = random_clustered_table(&mut rng, clusters);
        let all: Vec<Vec<Value>> = table.rows().map(<[Value]>::to_vec).collect();
        let options = StreamOptions::default();
        let ctx = format!("round {round}:\n{}", texts.join("\n"));

        let reference: Vec<_> = queries
            .iter()
            .map(|q| execute(q, &table, &options.exec).unwrap())
            .collect();

        let mut live = SharedStreamSession::new(&queries, &options).unwrap();
        for row in &all {
            live.feed(row.clone())
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        }
        let (results, stats) = live.finish();
        for (i, (result, expected)) in results.iter().zip(&reference).enumerate() {
            let result = result.as_ref().unwrap();
            assert_eq!(result.table, expected.table, "member {i} rows: {ctx}");
            assert_eq!(result.stats, expected.stats, "member {i} stats: {ctx}");
        }
        assert_eq!(
            stats.tests_evaluated + stats.tests_saved,
            stats.tests_logical,
            "{ctx}"
        );

        // Resume from every boundary on small streams, a sample on larger.
        let splits: Vec<usize> = if all.len() <= 20 {
            (0..=all.len()).collect()
        } else {
            let mut s = vec![0, 1, all.len() / 2, all.len()];
            for _ in 0..3 {
                s.push(rng.gen_range(0..=all.len()));
            }
            s
        };
        for split in splits {
            let sctx = format!("{ctx}\nsplit={split}/{}", all.len());
            let mut first = SharedStreamSession::new(&queries, &options).unwrap();
            for row in &all[..split] {
                first.feed(row.clone()).unwrap();
            }
            let checkpoints: Vec<Option<SessionCheckpoint>> = first
                .snapshot_all()
                .unwrap()
                .into_iter()
                .map(|cp| {
                    Some(
                        SessionCheckpoint::from_text(&cp.to_text())
                            .unwrap_or_else(|e| panic!("{sctx}: {e}")),
                    )
                })
                .collect();
            drop(first);
            let mut resumed = SharedStreamSession::resume(&queries, &options, checkpoints).unwrap();
            for row in &all[split..] {
                resumed.feed(row.clone()).unwrap();
            }
            let (results, stats) = resumed.finish();
            for (i, (result, expected)) in results.iter().zip(&reference).enumerate() {
                let result = result.as_ref().unwrap();
                assert_eq!(result.table, expected.table, "member {i} rows: {sctx}");
                assert_eq!(result.stats, expected.stats, "member {i} stats: {sctx}");
            }
            assert_eq!(
                stats.tests_evaluated + stats.tests_saved,
                stats.tests_logical,
                "{sctx}"
            );
        }
    }
}

#[test]
fn shared_stream_resume_from_every_prefix_is_bit_identical() {
    fuzz_shared_stream(0x57BEA3, 8);
}
