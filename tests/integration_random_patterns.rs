//! The heaviest soundness artillery: *generate random patterns* (random
//! length, star flags, and per-element predicates drawn from a predicate
//! alphabet) over random walks, and require the optimized engines to
//! agree exactly with the greedy-naive reference.
//!
//! This goes beyond the fixed query pools of the unit property tests: the
//! θ/φ analysis sees arbitrary combinations of implication structure
//! (identical predicates, subsumed bands, complements, constants), which
//! is where unsound shift/next entries would hide.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlts_core::{execute_query, DirectionChoice, EngineKind, ExecOptions, FirstTuplePolicy};
use sqlts_datagen::{integer_walk, prices_to_table, quote_schema};
use sqlts_relation::{Date, Table, Value};
use std::num::NonZeroUsize;

/// The predicate alphabet (binary-exact constants only, so f64 runtime
/// evaluation matches the solver's exact arithmetic).
const PREDICATES: &[&str] = &[
    "{v}.price < {v}.previous.price",
    "{v}.price > {v}.previous.price",
    "{v}.price <= {v}.previous.price",
    "{v}.price >= {v}.previous.price",
    "{v}.price = {v}.previous.price",
    "{v}.price <> {v}.previous.price",
    "{v}.price < 5",
    "{v}.price > 5",
    "{v}.price >= 3 AND {v}.price <= 8",
    "{v}.price = 4",
    "{v}.price < 0.5 * {v}.previous.price + 4",
    "{v}.price < {v}.previous.price OR {v}.price > 9",
];

fn random_query(rng: &mut SmallRng) -> String {
    let m = rng.gen_range(1..=5);
    let mut vars = Vec::new();
    let mut conds = Vec::new();
    for i in 0..m {
        let name = format!("V{i}");
        let star = rng.gen_bool(0.4);
        vars.push(if star {
            format!("*{name}")
        } else {
            name.clone()
        });
        // 0–2 predicates per element (0 = unconstrained element).
        for _ in 0..rng.gen_range(0..=2) {
            let p = PREDICATES[rng.gen_range(0..PREDICATES.len())];
            conds.push(format!("({})", p.replace("{v}", &name)));
        }
    }
    let select = if vars[0].starts_with('*') {
        "FIRST(V0).date".to_string()
    } else {
        "V0.date".to_string()
    };
    let mut q = format!(
        "SELECT {select} FROM t SEQUENCE BY date AS ({})",
        vars.join(", ")
    );
    if !conds.is_empty() {
        q.push_str(&format!(" WHERE {}", conds.join(" AND ")));
    }
    q
}

fn fuzz(seed: u64, rounds: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interesting = 0u32; // runs that produced at least one match
    for round in 0..rounds {
        let query = random_query(&mut rng);
        let data_seed = rng.gen::<u64>();
        let n = rng.gen_range(0..400);
        let table = prices_to_table(
            "T",
            Date::from_ymd(1990, 1, 1),
            &integer_walk(n, 1, 10, 2, data_seed),
        );
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };

        let reference = execute_query(
            &query,
            &table,
            &ExecOptions {
                engine: EngineKind::Naive,
                policy,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("round {round}: {query}: {e}"));
        if reference.stats.matches > 0 {
            interesting += 1;
        }
        for engine in [EngineKind::Ops, EngineKind::OpsShiftOnly] {
            let result = execute_query(
                &query,
                &table,
                &ExecOptions {
                    engine,
                    policy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                result.table, reference.table,
                "round {round} ({engine:?}, {policy:?}, n={n}, seed={data_seed}):\n{query}"
            );
            assert!(
                result.stats.predicate_tests <= reference.stats.predicate_tests,
                "round {round} ({engine:?}): OPS cost {} > naive {} for\n{query}",
                result.stats.predicate_tests,
                reference.stats.predicate_tests
            );
        }
    }
    // Sanity: the generator must not be producing only unmatched patterns.
    assert!(
        interesting > rounds / 5,
        "only {interesting}/{rounds} runs had matches; generator is too cold"
    );
}

/// A random multi-symbol table: `clusters` independent walks interleaved
/// under distinct names (so `CLUSTER BY name` produces several streams).
fn random_clustered_table(rng: &mut SmallRng, clusters: usize) -> Table {
    let mut table = Table::new(quote_schema());
    for c in 0..clusters {
        let name = format!("T{c}");
        let n = rng.gen_range(0..250);
        let walk = integer_walk(n, 1, 10, 2, rng.gen::<u64>());
        let mut day = Date::from_ymd(1990, 1, 1);
        for p in walk {
            while day.is_weekend() {
                day = day.plus_days(1);
            }
            table
                .push_row(vec![
                    Value::from(name.as_str()),
                    Value::Date(day),
                    Value::from(p),
                ])
                .unwrap();
            day = day.plus_days(1);
        }
    }
    table
}

/// Property: the cluster-parallel executor (threads ≥ 2) returns the same
/// match set, in the same order, with the same predicate-test count and
/// stats as the sequential executor (threads = 1) — for every engine,
/// policy, and direction.
fn fuzz_parallel(seed: u64, rounds: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interesting = 0u32;
    for round in 0..rounds {
        let base = random_query(&mut rng);
        let query = base.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date");
        let clusters = rng.gen_range(1..=6);
        let table = random_clustered_table(&mut rng, clusters);
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let direction = [
            DirectionChoice::Forward,
            DirectionChoice::Reverse,
            DirectionChoice::Auto,
        ][rng.gen_range(0..3usize)];
        let opts = |threads: usize| ExecOptions {
            engine,
            policy,
            direction,
            threads: NonZeroUsize::new(threads).unwrap(),
            ..Default::default()
        };

        let sequential = execute_query(&query, &table, &opts(1))
            .unwrap_or_else(|e| panic!("round {round}: {query}: {e}"));
        if sequential.stats.matches > 0 {
            interesting += 1;
        }
        let threads = rng.gen_range(2..=8);
        let parallel = execute_query(&query, &table, &opts(threads)).unwrap();
        assert_eq!(
            parallel.table, sequential.table,
            "round {round} ({engine:?}, {policy:?}, {direction:?}, \
             clusters={clusters}, threads={threads}):\n{query}"
        );
        assert_eq!(
            parallel.stats, sequential.stats,
            "round {round} ({engine:?}, {policy:?}, {direction:?}, \
             clusters={clusters}, threads={threads}): stats diverged for\n{query}"
        );
    }
    assert!(
        interesting > rounds / 5,
        "only {interesting}/{rounds} runs had matches; generator is too cold"
    );
}

/// `sub` appears, in order, within `full` (with arbitrary gaps).
fn is_subsequence(sub: &[Vec<Value>], full: &[Vec<Value>]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|row| it.any(|f| f == row))
}

fn rows(table: &Table) -> Vec<Vec<Value>> {
    table.rows().map(<[Value]>::to_vec).collect()
}

/// Property: whatever limits the governor is armed with, a governed run
/// never invents matches.  An untripped run is bit-identical to the
/// ungoverned one at every thread count; a tripped run yields an ordered
/// subsequence of the ungoverned match set (an exact prefix when
/// sequential), honours the match budget exactly, and reports a trip
/// consistent with the limit that fired.
fn fuzz_governed(seed: u64, rounds: u32) {
    use sqlts_core::{ExecError, Governor, TripReason};
    use std::time::Duration;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tripped_runs = 0u32;
    for round in 0..rounds {
        let base = random_query(&mut rng);
        let query = base.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date");
        let clusters = rng.gen_range(1..=6);
        let table = random_clustered_table(&mut rng, clusters);
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let opts = |threads: usize, governor: Governor| ExecOptions {
            engine,
            policy,
            threads: NonZeroUsize::new(threads).unwrap(),
            governor,
            ..Default::default()
        };

        let full = execute_query(&query, &table, &opts(1, Governor::unlimited()))
            .unwrap_or_else(|e| panic!("round {round}: {query}: {e}"));
        let full_rows = rows(&full.table);

        let max_steps = rng.gen_range(0..=full.stats.steps + 16);
        let max_matches = rng.gen_range(0..=full.stats.matches + 4);
        let governor = match rng.gen_range(0..4u8) {
            0 => Governor::unlimited().with_max_steps(max_steps),
            1 => Governor::unlimited().with_max_matches(max_matches),
            // A dead deadline: everything must be skipped, instantly.
            2 => Governor::unlimited().with_timeout(Duration::ZERO),
            _ => Governor::unlimited()
                .with_max_steps(max_steps)
                .with_max_matches(max_matches),
        };

        for threads in [1usize, 4] {
            let ctx = format!(
                "round {round} ({engine:?}, {policy:?}, clusters={clusters}, \
                 threads={threads}, governor={governor:?}):\n{query}"
            );
            match execute_query(&query, &table, &opts(threads, governor.clone())) {
                Ok(result) => {
                    assert_eq!(result.table, full.table, "untripped ≠ ungoverned: {ctx}");
                    assert_eq!(result.stats, full.stats, "stats diverged: {ctx}");
                    assert!(result.is_complete(), "{ctx}");
                }
                Err(ExecError::Governed { trip, partial }) => {
                    tripped_runs += 1;
                    assert!(
                        partial.is_complete(),
                        "trip is not a cluster failure: {ctx}"
                    );
                    let partial_rows = rows(&partial.table);
                    assert!(
                        is_subsequence(&partial_rows, &full_rows),
                        "governed output is not a subsequence: {ctx}\n\
                         partial={partial_rows:?}\nfull={full_rows:?}"
                    );
                    if threads == 1 {
                        assert_eq!(
                            partial_rows,
                            full_rows[..partial_rows.len()],
                            "sequential governed output is not a prefix: {ctx}"
                        );
                    }
                    match trip.reason {
                        TripReason::StepBudget => {
                            assert!(trip.steps > max_steps, "{ctx}")
                        }
                        TripReason::MatchBudget => {
                            assert_eq!(partial.stats.matches, max_matches, "{ctx}");
                            assert_eq!(partial_rows.len() as u64, max_matches, "{ctx}");
                        }
                        TripReason::Deadline | TripReason::Cancelled => {}
                    }
                }
                Err(e) => panic!("unexpected error: {e}\n{ctx}"),
            }
        }
    }
    // Sanity: the budget generator must actually exercise trips.
    assert!(
        tripped_runs > rounds / 4,
        "only {tripped_runs} governed runs tripped in {rounds} rounds"
    );
}

#[test]
fn random_patterns_agree_across_engines() {
    fuzz(0xC0FFEE, 400);
}

#[test]
fn governed_runs_are_prefix_consistent() {
    fuzz_governed(0x60BE6, 250);
}

#[test]
fn governed_runs_are_prefix_consistent_second_seed() {
    fuzz_governed(0xDEAD11E, 250);
}

#[test]
fn parallel_execution_agrees_with_sequential() {
    fuzz_parallel(0xBADC0DE, 300);
}

#[test]
fn parallel_execution_agrees_with_sequential_second_seed() {
    fuzz_parallel(0x5EED5, 300);
}

#[test]
fn random_patterns_agree_across_engines_second_seed() {
    fuzz(0xFEEDBEEF, 400);
}
