//! The heaviest soundness artillery: *generate random patterns* (random
//! length, star flags, and per-element predicates drawn from a predicate
//! alphabet) over random walks, and require the optimized engines to
//! agree exactly with the greedy-naive reference.
//!
//! This goes beyond the fixed query pools of the unit property tests: the
//! θ/φ analysis sees arbitrary combinations of implication structure
//! (identical predicates, subsumed bands, complements, constants), which
//! is where unsound shift/next entries would hide.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlts_core::{execute_query, DirectionChoice, EngineKind, ExecOptions, FirstTuplePolicy};
use sqlts_datagen::{integer_walk, prices_to_table, quote_schema};
use sqlts_relation::{Date, Table, Value};
use std::num::NonZeroUsize;

/// The predicate alphabet (binary-exact constants only, so f64 runtime
/// evaluation matches the solver's exact arithmetic).
const PREDICATES: &[&str] = &[
    "{v}.price < {v}.previous.price",
    "{v}.price > {v}.previous.price",
    "{v}.price <= {v}.previous.price",
    "{v}.price >= {v}.previous.price",
    "{v}.price = {v}.previous.price",
    "{v}.price <> {v}.previous.price",
    "{v}.price < 5",
    "{v}.price > 5",
    "{v}.price >= 3 AND {v}.price <= 8",
    "{v}.price = 4",
    "{v}.price < 0.5 * {v}.previous.price + 4",
    "{v}.price < {v}.previous.price OR {v}.price > 9",
];

fn random_query(rng: &mut SmallRng) -> String {
    let m = rng.gen_range(1..=5);
    let mut vars = Vec::new();
    let mut conds = Vec::new();
    for i in 0..m {
        let name = format!("V{i}");
        let star = rng.gen_bool(0.4);
        vars.push(if star {
            format!("*{name}")
        } else {
            name.clone()
        });
        // 0–2 predicates per element (0 = unconstrained element).
        for _ in 0..rng.gen_range(0..=2) {
            let p = PREDICATES[rng.gen_range(0..PREDICATES.len())];
            conds.push(format!("({})", p.replace("{v}", &name)));
        }
    }
    let select = if vars[0].starts_with('*') {
        "FIRST(V0).date".to_string()
    } else {
        "V0.date".to_string()
    };
    let mut q = format!(
        "SELECT {select} FROM t SEQUENCE BY date AS ({})",
        vars.join(", ")
    );
    if !conds.is_empty() {
        q.push_str(&format!(" WHERE {}", conds.join(" AND ")));
    }
    q
}

fn fuzz(seed: u64, rounds: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interesting = 0u32; // runs that produced at least one match
    for round in 0..rounds {
        let query = random_query(&mut rng);
        let data_seed = rng.gen::<u64>();
        let n = rng.gen_range(0..400);
        let table = prices_to_table(
            "T",
            Date::from_ymd(1990, 1, 1),
            &integer_walk(n, 1, 10, 2, data_seed),
        );
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };

        let reference = execute_query(
            &query,
            &table,
            &ExecOptions {
                engine: EngineKind::Naive,
                policy,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("round {round}: {query}: {e}"));
        if reference.stats.matches > 0 {
            interesting += 1;
        }
        for engine in [EngineKind::Ops, EngineKind::OpsShiftOnly] {
            let result = execute_query(
                &query,
                &table,
                &ExecOptions {
                    engine,
                    policy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                result.table, reference.table,
                "round {round} ({engine:?}, {policy:?}, n={n}, seed={data_seed}):\n{query}"
            );
            assert!(
                result.stats.predicate_tests <= reference.stats.predicate_tests,
                "round {round} ({engine:?}): OPS cost {} > naive {} for\n{query}",
                result.stats.predicate_tests,
                reference.stats.predicate_tests
            );
        }
    }
    // Sanity: the generator must not be producing only unmatched patterns.
    assert!(
        interesting > rounds / 5,
        "only {interesting}/{rounds} runs had matches; generator is too cold"
    );
}

/// A random multi-symbol table: `clusters` independent walks interleaved
/// under distinct names (so `CLUSTER BY name` produces several streams).
fn random_clustered_table(rng: &mut SmallRng, clusters: usize) -> Table {
    let mut table = Table::new(quote_schema());
    for c in 0..clusters {
        let name = format!("T{c}");
        let n = rng.gen_range(0..250);
        let walk = integer_walk(n, 1, 10, 2, rng.gen::<u64>());
        let mut day = Date::from_ymd(1990, 1, 1);
        for p in walk {
            while day.is_weekend() {
                day = day.plus_days(1);
            }
            table
                .push_row(vec![
                    Value::from(name.as_str()),
                    Value::Date(day),
                    Value::from(p),
                ])
                .unwrap();
            day = day.plus_days(1);
        }
    }
    table
}

/// Property: the cluster-parallel executor (threads ≥ 2) returns the same
/// match set, in the same order, with the same predicate-test count and
/// stats as the sequential executor (threads = 1) — for every engine,
/// policy, and direction.
fn fuzz_parallel(seed: u64, rounds: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interesting = 0u32;
    for round in 0..rounds {
        let base = random_query(&mut rng);
        let query = base.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date");
        let clusters = rng.gen_range(1..=6);
        let table = random_clustered_table(&mut rng, clusters);
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let direction = [
            DirectionChoice::Forward,
            DirectionChoice::Reverse,
            DirectionChoice::Auto,
        ][rng.gen_range(0..3usize)];
        let opts = |threads: usize| ExecOptions {
            engine,
            policy,
            direction,
            threads: NonZeroUsize::new(threads).unwrap(),
            ..Default::default()
        };

        let sequential = execute_query(&query, &table, &opts(1))
            .unwrap_or_else(|e| panic!("round {round}: {query}: {e}"));
        if sequential.stats.matches > 0 {
            interesting += 1;
        }
        let threads = rng.gen_range(2..=8);
        let parallel = execute_query(&query, &table, &opts(threads)).unwrap();
        assert_eq!(
            parallel.table, sequential.table,
            "round {round} ({engine:?}, {policy:?}, {direction:?}, \
             clusters={clusters}, threads={threads}):\n{query}"
        );
        assert_eq!(
            parallel.stats, sequential.stats,
            "round {round} ({engine:?}, {policy:?}, {direction:?}, \
             clusters={clusters}, threads={threads}): stats diverged for\n{query}"
        );
    }
    assert!(
        interesting > rounds / 5,
        "only {interesting}/{rounds} runs had matches; generator is too cold"
    );
}

/// `sub` appears, in order, within `full` (with arbitrary gaps).
fn is_subsequence(sub: &[Vec<Value>], full: &[Vec<Value>]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|row| it.any(|f| f == row))
}

fn rows(table: &Table) -> Vec<Vec<Value>> {
    table.rows().map(<[Value]>::to_vec).collect()
}

/// Property: whatever limits the governor is armed with, a governed run
/// never invents matches.  An untripped run is bit-identical to the
/// ungoverned one at every thread count; a tripped run yields an ordered
/// subsequence of the ungoverned match set (an exact prefix when
/// sequential), honours the match budget exactly, and reports a trip
/// consistent with the limit that fired.
fn fuzz_governed(seed: u64, rounds: u32) {
    use sqlts_core::{ExecError, Governor, TripReason};
    use std::time::Duration;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tripped_runs = 0u32;
    for round in 0..rounds {
        let base = random_query(&mut rng);
        let query = base.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date");
        let clusters = rng.gen_range(1..=6);
        let table = random_clustered_table(&mut rng, clusters);
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let opts = |threads: usize, governor: Governor| ExecOptions {
            engine,
            policy,
            threads: NonZeroUsize::new(threads).unwrap(),
            governor,
            ..Default::default()
        };

        let full = execute_query(&query, &table, &opts(1, Governor::unlimited()))
            .unwrap_or_else(|e| panic!("round {round}: {query}: {e}"));
        let full_rows = rows(&full.table);

        let max_steps = rng.gen_range(0..=full.stats.steps + 16);
        let max_matches = rng.gen_range(0..=full.stats.matches + 4);
        let governor = match rng.gen_range(0..4u8) {
            0 => Governor::unlimited().with_max_steps(max_steps),
            1 => Governor::unlimited().with_max_matches(max_matches),
            // A dead deadline: everything must be skipped, instantly.
            2 => Governor::unlimited().with_timeout(Duration::ZERO),
            _ => Governor::unlimited()
                .with_max_steps(max_steps)
                .with_max_matches(max_matches),
        };

        for threads in [1usize, 4] {
            let ctx = format!(
                "round {round} ({engine:?}, {policy:?}, clusters={clusters}, \
                 threads={threads}, governor={governor:?}):\n{query}"
            );
            match execute_query(&query, &table, &opts(threads, governor.clone())) {
                Ok(result) => {
                    assert_eq!(result.table, full.table, "untripped ≠ ungoverned: {ctx}");
                    assert_eq!(result.stats, full.stats, "stats diverged: {ctx}");
                    assert!(result.is_complete(), "{ctx}");
                }
                Err(ExecError::Governed { trip, partial }) => {
                    tripped_runs += 1;
                    assert!(
                        partial.is_complete(),
                        "trip is not a cluster failure: {ctx}"
                    );
                    let partial_rows = rows(&partial.table);
                    assert!(
                        is_subsequence(&partial_rows, &full_rows),
                        "governed output is not a subsequence: {ctx}\n\
                         partial={partial_rows:?}\nfull={full_rows:?}"
                    );
                    if threads == 1 {
                        assert_eq!(
                            partial_rows,
                            full_rows[..partial_rows.len()],
                            "sequential governed output is not a prefix: {ctx}"
                        );
                    }
                    match trip.reason {
                        TripReason::StepBudget => {
                            assert!(trip.steps > max_steps, "{ctx}")
                        }
                        TripReason::MatchBudget => {
                            assert_eq!(partial.stats.matches, max_matches, "{ctx}");
                            assert_eq!(partial_rows.len() as u64, max_matches, "{ctx}");
                        }
                        TripReason::Deadline | TripReason::Cancelled => {}
                    }
                }
                Err(e) => panic!("unexpected error: {e}\n{ctx}"),
            }
        }
    }
    // Sanity: the budget generator must actually exercise trips.
    assert!(
        tripped_runs > rounds / 4,
        "only {tripped_runs} governed runs tripped in {rounds} rounds"
    );
}

/// Property: feeding a relation one tuple at a time through a
/// [`StreamSession`] and then finishing produces the same rows, the same
/// stats, and (with instrumentation armed) the same per-cluster metrics
/// and event streams as one batch `execute` over the same rows — for
/// every engine, both policies, and both thread counts.
fn fuzz_streamed(seed: u64, rounds: u32) {
    use sqlts_core::{compile, execute, CompileOptions, Instrument, StreamOptions, StreamSession};
    use sqlts_datagen::quote_schema as schema;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interesting = 0u32;
    for round in 0..rounds {
        let base = random_query(&mut rng);
        let text = base.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date");
        let clusters = rng.gen_range(1..=4);
        let table = random_clustered_table(&mut rng, clusters);
        let policy = if rng.gen_bool(0.5) {
            FirstTuplePolicy::VacuousTrue
        } else {
            FirstTuplePolicy::Fail
        };
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let threads = [1usize, 4][rng.gen_range(0..2usize)];
        let query = compile(&text, &schema(), &CompileOptions::default())
            .unwrap_or_else(|e| panic!("round {round}: {text}: {e}"));
        let exec = ExecOptions {
            engine,
            policy,
            threads: NonZeroUsize::new(threads).unwrap(),
            instrument: Instrument::tracing(),
            ..Default::default()
        };
        let ctx = format!("round {round} ({engine:?}, {policy:?}, threads={threads}):\n{text}");

        let batch = execute(&query, &table, &exec).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        if batch.stats.matches > 0 {
            interesting += 1;
        }
        let mut session = StreamSession::new(
            &query,
            StreamOptions {
                exec: exec.clone(),
                ..StreamOptions::default()
            },
        )
        .unwrap();
        for row in table.rows() {
            session
                .feed(row.to_vec())
                .unwrap_or_else(|e| panic!("{ctx}: feed: {e}"));
        }
        let streamed = session
            .finish()
            .unwrap_or_else(|e| panic!("{ctx}: finish: {e}"));
        assert_eq!(streamed.table, batch.table, "streamed ≠ batch rows: {ctx}");
        assert_eq!(streamed.stats, batch.stats, "streamed ≠ batch stats: {ctx}");
        let (sp, bp) = (streamed.profile.unwrap(), batch.profile.unwrap());
        assert_eq!(sp.clusters, bp.clusters, "cluster profiles diverged: {ctx}");
        assert_eq!(sp.totals, bp.totals, "profile totals diverged: {ctx}");
        assert_eq!(sp.tuples, bp.tuples, "profile tuple counts diverged: {ctx}");
    }
    assert!(
        interesting > rounds / 5,
        "only {interesting}/{rounds} streamed runs had matches; generator is too cold"
    );
}

/// Property: a checkpoint taken at *any* tuple boundary — serialized to
/// text and parsed back — resumes to the exact rows, stats, profile, and
/// stream log of the session that was never interrupted.
fn fuzz_checkpoint_resume(seed: u64, rounds: u32) {
    use sqlts_core::{
        compile, CompileOptions, Instrument, SessionCheckpoint, StreamOptions, StreamSession,
    };
    use sqlts_datagen::quote_schema as schema;

    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 0..rounds {
        let base = random_query(&mut rng);
        let text = base.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date");
        let clusters = rng.gen_range(1..=3);
        let table = random_clustered_table(&mut rng, clusters);
        let all: Vec<Vec<Value>> = table.rows().map(<[Value]>::to_vec).collect();
        let engine = [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ][rng.gen_range(0..4usize)];
        let query = compile(&text, &schema(), &CompileOptions::default())
            .unwrap_or_else(|e| panic!("round {round}: {text}: {e}"));
        let options = || StreamOptions {
            exec: ExecOptions {
                engine,
                instrument: Instrument::tracing(),
                ..Default::default()
            },
            log_capacity: 4096,
            ..StreamOptions::default()
        };

        // Every boundary on small streams; a random sample on larger ones.
        let splits: Vec<usize> = if all.len() <= 24 {
            (0..=all.len()).collect()
        } else {
            let mut s = vec![0, 1, all.len() / 2, all.len() - 1, all.len()];
            for _ in 0..4 {
                s.push(rng.gen_range(0..=all.len()));
            }
            s
        };
        for split in splits {
            let ctx = format!(
                "round {round} ({engine:?}, split={split}/{}):\n{text}",
                all.len()
            );
            // The uninterrupted session checkpoints at the boundary too, so
            // its stream log carries the same Checkpoint event.
            let mut live = StreamSession::new(&query, options()).unwrap();
            for row in &all[..split] {
                live.feed(row.clone()).unwrap();
            }
            let text_cp = live.snapshot().unwrap().to_text();
            for row in &all[split..] {
                live.feed(row.clone()).unwrap();
            }
            let live_log: Vec<_> = live.stream_log().unwrap().events().cloned().collect();
            let live_result = live.finish().unwrap();

            let checkpoint = SessionCheckpoint::from_text(&text_cp)
                .unwrap_or_else(|e| panic!("{ctx}: parse: {e}"));
            assert_eq!(checkpoint.records(), split as u64, "{ctx}");
            let mut resumed = StreamSession::resume(&query, options(), checkpoint).unwrap();
            for row in &all[split..] {
                resumed.feed(row.clone()).unwrap();
            }
            let resumed_log: Vec<_> = resumed.stream_log().unwrap().events().cloned().collect();
            let resumed_result = resumed.finish().unwrap();

            assert_eq!(resumed_log, live_log, "stream logs diverged: {ctx}");
            assert_eq!(
                resumed_result.table, live_result.table,
                "rows diverged: {ctx}"
            );
            assert_eq!(
                resumed_result.stats, live_result.stats,
                "stats diverged: {ctx}"
            );
            let (rp, lp) = (
                resumed_result.profile.unwrap(),
                live_result.profile.unwrap(),
            );
            assert_eq!(rp.clusters, lp.clusters, "cluster profiles diverged: {ctx}");
            assert_eq!(rp.totals, lp.totals, "profile totals diverged: {ctx}");
        }
    }
}

#[test]
fn streamed_execution_agrees_with_batch() {
    fuzz_streamed(0x57AE4, 120);
}

#[test]
fn streamed_execution_agrees_with_batch_second_seed() {
    fuzz_streamed(0xFEED5, 120);
}

#[test]
fn checkpoint_resume_is_bit_identical_at_every_boundary() {
    fuzz_checkpoint_resume(0xC4EC4, 12);
}

#[test]
fn random_patterns_agree_across_engines() {
    fuzz(0xC0FFEE, 400);
}

#[test]
fn governed_runs_are_prefix_consistent() {
    fuzz_governed(0x60BE6, 250);
}

#[test]
fn governed_runs_are_prefix_consistent_second_seed() {
    fuzz_governed(0xDEAD11E, 250);
}

#[test]
fn parallel_execution_agrees_with_sequential() {
    fuzz_parallel(0xBADC0DE, 300);
}

#[test]
fn parallel_execution_agrees_with_sequential_second_seed() {
    fuzz_parallel(0x5EED5, 300);
}

#[test]
fn random_patterns_agree_across_engines_second_seed() {
    fuzz(0xFEEDBEEF, 400);
}
