//! Integration: the full pipeline — CSV → schema → parse → bind →
//! optimize → search → project → CSV — across crate boundaries.

use sqlts_core::{execute_query, EngineKind, ExecOptions, FirstTuplePolicy};
use sqlts_relation::{ColumnType, Schema, Table, Value};

fn quote_schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

const PORTFOLIO: &str = "\
name,date,price
INTC,1999-01-25,60
INTC,1999-01-26,63.5
INTC,1999-01-27,62
IBM,1999-01-25,81
IBM,1999-01-26,80.50
IBM,1999-01-27,84
ACME,1999-01-25,10
ACME,1999-01-26,12
ACME,1999-01-27,9
ACME,1999-01-28,9.5
ACME,1999-01-29,7
";

#[test]
fn example1_finds_the_spike_and_crash() {
    let table = Table::from_csv_str(quote_schema(), PORTFOLIO).unwrap();
    let result = execute_query(
        "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
         WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
        &table,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(result.table.len(), 1);
    assert_eq!(result.table.cell(0, 0), &Value::from("ACME"));
}

#[test]
fn output_round_trips_through_csv() {
    let table = Table::from_csv_str(quote_schema(), PORTFOLIO).unwrap();
    let result = execute_query(
        "SELECT X.name, X.date AS on_date, X.price \
         FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
         WHERE Y.price < X.price",
        &table,
        &ExecOptions::default(),
    )
    .unwrap();
    let rendered = result.table.to_csv_string();
    let schema2 = Schema::new([
        ("name", ColumnType::Str),
        ("on_date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .unwrap();
    let parsed = Table::from_csv_str(schema2, &rendered).unwrap();
    assert_eq!(parsed.len(), result.table.len());
    for (a, b) in parsed.rows().zip(result.table.rows()) {
        assert_eq!(a, b);
    }
}

#[test]
fn projection_navigation_and_aggregates() {
    let table = Table::from_csv_str(quote_schema(), PORTFOLIO).unwrap();
    // ACME falls 12 → 9 → (9.5 up) ...; match the falling run and project
    // its boundaries with FIRST/LAST plus next/previous navigation.
    let result = execute_query(
        "SELECT X.name, FIRST(Y).date AS first_down, LAST(Y).date AS last_down, \
         LAST(Y).next.price AS after \
         FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y) \
         WHERE Y.price < Y.previous.price AND X.name = 'ACME'",
        &table,
        &ExecOptions {
            policy: FirstTuplePolicy::Fail,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.table.len(), 2, "{}", result.table.to_csv_string());
    // First match: X = 1/26 (the 12), Y = the 1/27 drop (12 → 9).
    assert_eq!(result.table.cell(0, 1).to_string(), "1999-01-27");
    assert_eq!(result.table.cell(0, 3), &Value::from(9.5));
    // Second match: X = 1/28, Y = 1/29 (9.5 → 7), nothing after → NULL.
    assert_eq!(result.table.cell(1, 2).to_string(), "1999-01-29");
    assert!(result.table.cell(1, 3).is_null());
}

#[test]
fn all_engines_project_identically() {
    let table = Table::from_csv_str(quote_schema(), PORTFOLIO).unwrap();
    let query = "SELECT X.name, FIRST(Y).date AS d \
                 FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y) \
                 WHERE Y.price > Y.previous.price";
    let mut tables = Vec::new();
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
        EngineKind::OpsShiftOnly,
    ] {
        let r = execute_query(
            query,
            &table,
            &ExecOptions {
                engine,
                ..Default::default()
            },
        )
        .unwrap();
        tables.push((engine, r.table));
    }
    // Greedy engines agree exactly; the backtracker agrees on match
    // starts (FIRST of the star) because interior boundaries here are
    // unique — the star is the final element, and FIRST(Y) is stable.
    let (_, reference) = &tables[0];
    for (engine, t) in &tables {
        assert_eq!(t.len(), reference.len(), "{engine:?} match count differs");
        for (a, b) in t.rows().zip(reference.rows()) {
            assert_eq!(a, b, "{engine:?}");
        }
    }
}

#[test]
fn cluster_streams_never_leak() {
    // A pattern that would match across the IBM→ACME boundary if
    // clustering were broken (price 84 followed by price 10).
    let table = Table::from_csv_str(quote_schema(), PORTFOLIO).unwrap();
    let result = execute_query(
        "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
         WHERE X.price > 80 AND Y.price < 20",
        &table,
        &ExecOptions::default(),
    )
    .unwrap();
    assert!(result.table.is_empty());
}

#[test]
fn errors_are_reported_with_context() {
    let table = Table::from_csv_str(quote_schema(), PORTFOLIO).unwrap();
    let err = execute_query(
        "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X) \
         WHERE X.volume > 100",
        &table,
        &ExecOptions::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("no such column: volume"));
}
