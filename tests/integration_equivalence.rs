//! Integration: cross-crate randomized equivalence — the optimized
//! engines must return exactly the matches of the naive reference on
//! realistic generated workloads (larger and longer-running than the
//! per-crate unit property tests).

use sqlts_core::{execute_query, EngineKind, ExecOptions, FirstTuplePolicy};
use sqlts_datagen::{integer_walk, prices_to_table, sawtooth};
use sqlts_relation::{Date, Table};

fn table_of(prices: &[f64]) -> Table {
    prices_to_table("T", Date::from_ymd(1980, 1, 1), prices)
}

fn assert_engines_agree(query: &str, table: &Table, policy: FirstTuplePolicy, label: &str) {
    let reference = execute_query(
        query,
        table,
        &ExecOptions {
            engine: EngineKind::Naive,
            policy,
            ..Default::default()
        },
    )
    .unwrap();
    for engine in [EngineKind::Ops, EngineKind::OpsShiftOnly] {
        let result = execute_query(
            query,
            table,
            &ExecOptions {
                engine,
                policy,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            result.table, reference.table,
            "{label}: {engine:?} diverged from naive"
        );
        assert!(
            result.stats.predicate_tests <= reference.stats.predicate_tests,
            "{label}: {engine:?} did more work ({}) than naive ({})",
            result.stats.predicate_tests,
            reference.stats.predicate_tests
        );
    }
}

const QUERIES: &[(&str, &str)] = &[
    (
        "double-fall",
        "SELECT A.date FROM t SEQUENCE BY date AS (A, B) \
         WHERE A.price < A.previous.price AND B.price < B.previous.price",
    ),
    (
        "band-chain",
        "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C, D) \
         WHERE A.price < A.previous.price \
         AND B.price < B.previous.price AND B.price > 3 AND B.price < 8 \
         AND C.price > C.previous.price AND C.price < 9 \
         AND D.price > D.previous.price",
    ),
    (
        "three-periods",
        "SELECT FIRST(X).date FROM t SEQUENCE BY date AS (*X, *Y, *Z) \
         WHERE X.price > X.previous.price AND Y.price < Y.previous.price \
         AND Z.price > Z.previous.price",
    ),
    (
        "star-band",
        "SELECT FIRST(X).date FROM t SEQUENCE BY date AS (A, *X, S) \
         WHERE A.price > 6 AND X.price <= X.previous.price AND S.price > 8",
    ),
    (
        "ratio-drop",
        "SELECT A.date FROM t SEQUENCE BY date AS (A, *B, C) \
         WHERE B.price < 0.98 * B.previous.price \
         AND 0.98 * C.previous.price < C.price AND C.price < 1.02 * C.previous.price",
    ),
    (
        "equalities",
        "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C, D) \
         WHERE A.price = 5 AND B.price = 6 AND C.price = 5 AND D.price = 6",
    ),
    (
        "disjunction",
        "SELECT A.date FROM t SEQUENCE BY date AS (A, B) \
         WHERE (A.price < 3 OR A.price > 8) AND B.price >= A.price",
    ),
    (
        "nonlocal",
        "SELECT S.date FROM t SEQUENCE BY date AS (*X, S) \
         WHERE X.price <= X.previous.price AND S.price > FIRST(X).price",
    ),
];

#[test]
fn engines_agree_on_integer_walks() {
    for seed in 0..8u64 {
        let table = table_of(&integer_walk(2_000, 1, 10, 2, seed));
        for (label, query) in QUERIES {
            for policy in [FirstTuplePolicy::Fail, FirstTuplePolicy::VacuousTrue] {
                assert_engines_agree(query, &table, policy, &format!("{label}/walk-{seed}"));
            }
        }
    }
}

#[test]
fn engines_agree_on_sawtooth() {
    for seed in 0..4u64 {
        let table = table_of(&sawtooth(2_000, 16, seed));
        for (label, query) in QUERIES {
            assert_engines_agree(
                query,
                &table,
                FirstTuplePolicy::VacuousTrue,
                &format!("{label}/saw-{seed}"),
            );
        }
    }
}

#[test]
fn engines_agree_on_simulated_djia() {
    let table = sqlts_datagen::djia_series(77);
    let queries = [
        "SELECT FIRST(Y).date FROM djia SEQUENCE BY date AS (*Y, Z) \
         WHERE Y.price < 0.98 * Y.previous.price AND Z.price > 1.02 * Z.previous.price",
        "SELECT X.date FROM djia SEQUENCE BY date AS (X, *Y, *Z, *T, S) \
         WHERE X.price >= 0.98 * X.previous.price \
         AND Y.price < 0.98 * Y.previous.price \
         AND 0.98 * Z.previous.price < Z.price AND Z.price < 1.02 * Z.previous.price \
         AND T.price > 1.02 * T.previous.price \
         AND S.price <= 1.02 * S.previous.price",
    ];
    for (i, q) in queries.iter().enumerate() {
        assert_engines_agree(
            q,
            &table,
            FirstTuplePolicy::VacuousTrue,
            &format!("djia-{i}"),
        );
    }
}
