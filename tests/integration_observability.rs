//! Observability integration tests: deterministic trace replay of the
//! paper's worked examples, cluster-order merge invariance across thread
//! counts, and the armed-vs-unarmed bit-identity guarantee.

use sqlts_core::trace::TripCause;
use sqlts_core::{
    execute_query, EngineKind, ExecError, ExecOptions, Governor, Instrument, TraceEvent,
};
use sqlts_datagen::{prices_to_table, quote_schema};
use sqlts_relation::{Date, Table, Value};
use std::num::NonZeroUsize;

/// The paper's Example 4 predicate pattern (the Figure 5 workload), whose
/// optimizer tables are the worked Example 5: shift `[1, 1, 1, 3]`,
/// next `[0, 1, 2, 1]`.
const EXAMPLE4: &str = "\
SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
WHERE A.price < A.previous.price \
AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
AND C.price > C.previous.price AND C.price < 52 \
AND D.price > D.previous.price";

/// The paper's Example 9 (seven elements, four stars).
const EXAMPLE9: &str = "\
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, Y, *Z, *T, U, *V, S) \
WHERE X.price > X.previous.price \
AND 30 < Y.price AND Y.price < 40 \
AND Z.price < Z.previous.price \
AND T.price > T.previous.price \
AND 35 < U.price AND U.price < 40 \
AND V.price < V.previous.price \
AND S.price < 30";

/// The paper's §4.2.1 fifteen-value price sequence used for Figure 5.
const FIG5_PRICES: [f64; 15] = [
    55.0, 50.0, 45.0, 57.0, 54.0, 50.0, 47.0, 49.0, 45.0, 42.0, 55.0, 57.0, 59.0, 60.0, 57.0,
];

fn traced(engine: EngineKind, threads: usize) -> ExecOptions {
    ExecOptions {
        engine,
        threads: NonZeroUsize::new(threads).unwrap(),
        instrument: Instrument::tracing(),
        ..Default::default()
    }
}

/// A multi-cluster quote table: one symbol per price series.
fn multi_cluster_table(series: &[(&str, &[f64])]) -> Table {
    let mut table = Table::new(quote_schema());
    for (name, prices) in series {
        let mut date = Date::from_ymd(1990, 1, 1);
        for &p in *prices {
            table
                .push_row(vec![Value::from(*name), Value::Date(date), Value::from(p)])
                .unwrap();
            date = date.plus_days(1);
        }
    }
    table
}

#[test]
fn example5_ops_trace_replays_figure5() {
    let table = prices_to_table("X", Date::from_ymd(1990, 1, 1), &FIG5_PRICES);
    let r = execute_query(EXAMPLE4, &table, &traced(EngineKind::Ops, 1)).unwrap();
    let p = r.profile.expect("tracing arms the profile");

    // The worked Example 5 tables, folded into the profile.
    let opt = p.optimizer.as_ref().expect("optimizer report folded in");
    assert_eq!(opt.shift, vec![1, 1, 1, 3]);
    assert_eq!(opt.next, vec![0, 1, 2, 1]);

    // The §7 cost metric, broken down per position.  11 + 7 + 3 + 1 = 22
    // tests: OPS never re-reads the tuples the shift/next analysis
    // already accounts for.
    assert_eq!(p.totals.tests_per_position, vec![11, 7, 3, 1]);
    assert_eq!(p.predicate_tests(), 22);
    assert_eq!(p.predicate_tests(), r.stats.predicate_tests);

    // The signature Figure 5 moment: the failure of t9 against p4 takes
    // shift(4) = 3 and resumes at next(4) = 1 — positions 7 and 8 are
    // never re-tested.
    let events: Vec<&TraceEvent> = p.merged_events().map(|(_, e)| e).collect();
    let fail_at = events
        .iter()
        .position(|e| matches!(e, TraceEvent::Fail { i: 9, j: 4 }))
        .expect("t9 fails p4");
    assert_eq!(events[fail_at + 1], &TraceEvent::Shift { j: 4, dist: 3 });
    assert_eq!(events[fail_at + 2], &TraceEvent::Next { j: 4, k: 1 });
    assert_eq!(events[fail_at + 3], &TraceEvent::Advance { i: 9, j: 1 });

    // The full replayable prefix of the search, pinned: the first three
    // attempts of Figure 5.
    let head: Vec<TraceEvent> = events.iter().take(16).map(|e| **e).collect();
    assert_eq!(
        head,
        vec![
            TraceEvent::Advance { i: 1, j: 1 },
            TraceEvent::Fail { i: 2, j: 2 },
            TraceEvent::Shift { j: 2, dist: 1 },
            TraceEvent::Next { j: 2, k: 1 },
            TraceEvent::Advance { i: 2, j: 1 },
            TraceEvent::Advance { i: 3, j: 2 },
            TraceEvent::Fail { i: 4, j: 3 },
            TraceEvent::Shift { j: 3, dist: 1 },
            TraceEvent::Next { j: 3, k: 2 },
            TraceEvent::Fail { i: 4, j: 2 },
            TraceEvent::Shift { j: 2, dist: 1 },
            TraceEvent::Next { j: 2, k: 1 },
            TraceEvent::Fail { i: 4, j: 1 },
            TraceEvent::Shift { j: 1, dist: 1 },
            TraceEvent::Next { j: 1, k: 0 },
            TraceEvent::Advance { i: 5, j: 1 },
        ]
    );
}

#[test]
fn example5_naive_pays_the_rereads_ops_skips() {
    let table = prices_to_table("X", Date::from_ymd(1990, 1, 1), &FIG5_PRICES);
    let naive = execute_query(EXAMPLE4, &table, &traced(EngineKind::Naive, 1)).unwrap();
    let ops = execute_query(EXAMPLE4, &table, &traced(EngineKind::Ops, 1)).unwrap();
    let (naive, ops) = (naive.profile.unwrap(), ops.profile.unwrap());
    // Same answer, different cost: the naive engine restarts one tuple on
    // after every failure (27 tests), OPS skips the accounted-for prefix
    // (22) — the gap is entirely in position-1 re-tests.
    assert_eq!(naive.totals.tests_per_position, vec![15, 8, 3, 1]);
    assert_eq!(naive.predicate_tests(), 27);
    assert!(ops.predicate_tests() < naive.predicate_tests());
    // Every naive realign is a distance-1 shift.
    assert_eq!(naive.totals.shifts.max(), 1);
}

#[test]
fn example9_star_trace_replays() {
    // Rise, band hit, dip, rise, band hit, dip, collapse.
    let prices = [28.0, 33.0, 38.0, 31.0, 36.0, 39.0, 33.0, 25.0];
    let table = prices_to_table("ACME", Date::from_ymd(1990, 1, 1), &prices);
    let r = execute_query(EXAMPLE9, &table, &traced(EngineKind::Ops, 1)).unwrap();
    let p = r.profile.unwrap();

    // The star graph's derived tables (§5.1).
    let opt = p.optimizer.as_ref().unwrap();
    assert_eq!(opt.shift, vec![1, 1, 1, 1, 3, 3, 3]);
    assert_eq!(opt.next, vec![0, 1, 1, 1, 1, 1, 1]);

    assert_eq!(p.totals.tests_per_position, vec![8, 2, 2, 0, 0, 0, 0]);
    assert_eq!(p.predicate_tests(), 12);
    assert_eq!(p.predicate_tests(), r.stats.predicate_tests);

    // The full event stream of the star search, pinned.
    let events: Vec<TraceEvent> = p.merged_events().map(|(_, e)| *e).collect();
    assert_eq!(
        events,
        vec![
            TraceEvent::Advance { i: 1, j: 1 },
            TraceEvent::Advance { i: 2, j: 1 },
            TraceEvent::Advance { i: 3, j: 1 },
            TraceEvent::Fail { i: 4, j: 1 },
            TraceEvent::Advance { i: 4, j: 2 },
            TraceEvent::Fail { i: 5, j: 3 },
            TraceEvent::Shift { j: 3, dist: 1 },
            TraceEvent::Next { j: 3, k: 1 },
            TraceEvent::Fail { i: 4, j: 1 },
            TraceEvent::Shift { j: 1, dist: 1 },
            TraceEvent::Next { j: 1, k: 0 },
            TraceEvent::Advance { i: 5, j: 1 },
            TraceEvent::Advance { i: 6, j: 1 },
            TraceEvent::Fail { i: 7, j: 1 },
            TraceEvent::Advance { i: 7, j: 2 },
            TraceEvent::Advance { i: 8, j: 3 },
        ]
    );
}

#[test]
fn match_events_agree_with_retained_rows() {
    let table = multi_cluster_table(&[
        ("AAA", &[10.0, 12.0, 9.0, 11.0, 8.0][..]),
        ("BBB", &[5.0, 7.0, 6.0][..]),
    ]);
    let src = "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
               WHERE Y.price < X.price";
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
        EngineKind::OpsShiftOnly,
    ] {
        let r = execute_query(src, &table, &traced(engine, 1)).unwrap();
        let p = r.profile.unwrap();
        assert_eq!(p.matches(), r.table.len() as u64, "{engine:?}");
        let match_events = p
            .merged_events()
            .filter(|(_, e)| matches!(e, TraceEvent::MatchEmitted { .. }))
            .count();
        assert_eq!(match_events as u64, p.matches(), "{engine:?}");
    }
}

#[test]
fn event_streams_and_profiles_identical_threads_1_vs_4() {
    let table = multi_cluster_table(&[
        ("AAA", &[55.0, 50.0, 45.0, 57.0, 54.0, 50.0, 47.0][..]),
        ("BBB", &[49.0, 45.0, 42.0, 55.0, 57.0][..]),
        ("CCC", &[59.0, 60.0, 57.0, 48.0, 44.0, 51.0][..]),
    ]);
    let src = "SELECT A.name FROM quote CLUSTER BY name SEQUENCE BY date AS (A, B, C) \
               WHERE A.price < A.previous.price AND B.price < B.previous.price \
               AND C.price > C.previous.price";
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
        EngineKind::OpsShiftOnly,
    ] {
        let seq = execute_query(src, &table, &traced(engine, 1)).unwrap();
        let par = execute_query(src, &table, &traced(engine, 4)).unwrap();
        assert_eq!(seq.table, par.table, "{engine:?}");
        assert_eq!(seq.stats, par.stats, "{engine:?}");
        let (sp, pp) = (seq.profile.unwrap(), par.profile.unwrap());
        // The cluster-order merge makes the whole profile (bar wall
        // clock) and the merged event stream thread-count invariant.
        assert_eq!(
            sp.totals.tests_per_position, pp.totals.tests_per_position,
            "{engine:?}"
        );
        assert_eq!(sp.totals.shifts, pp.totals.shifts, "{engine:?}");
        assert_eq!(sp.totals.backtracks, pp.totals.backtracks, "{engine:?}");
        assert_eq!(sp.matches(), pp.matches(), "{engine:?}");
        let se: Vec<(usize, TraceEvent)> = sp.merged_events().map(|(c, e)| (c, *e)).collect();
        let pe: Vec<(usize, TraceEvent)> = pp.merged_events().map(|(c, e)| (c, *e)).collect();
        assert_eq!(se, pe, "{engine:?}");
        assert_eq!(sp.events_jsonl(), pp.events_jsonl(), "{engine:?}");
        // Prometheus exposition is identical too, apart from the
        // wall-clock phase gauges (explicitly outside the bit-identity
        // guarantee).
        let strip_clock = |prom: String| -> Vec<String> {
            prom.lines()
                .filter(|l| !l.starts_with("sqlts_phase_seconds"))
                .map(String::from)
                .collect()
        };
        assert_eq!(
            strip_clock(sp.to_prometheus()),
            strip_clock(pp.to_prometheus()),
            "{engine:?}"
        );
    }
}

#[test]
fn armed_run_is_bit_identical_to_unarmed() {
    let table = multi_cluster_table(&[
        ("AAA", &[10.0, 12.0, 9.0, 11.0, 8.0, 13.0][..]),
        ("BBB", &[5.0, 7.0, 6.0, 9.0][..]),
    ]);
    let src = "SELECT X.name, Y.price FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
               WHERE Y.price > X.price";
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
        EngineKind::OpsShiftOnly,
    ] {
        let plain = execute_query(
            src,
            &table,
            &ExecOptions {
                engine,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(plain.profile.is_none(), "unarmed runs carry no profile");
        for instrument in [Instrument::profiling(), Instrument::tracing()] {
            let armed = execute_query(
                src,
                &table,
                &ExecOptions {
                    engine,
                    instrument,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(armed.table, plain.table, "{engine:?} {instrument:?}");
            assert_eq!(armed.stats, plain.stats, "{engine:?} {instrument:?}");
            // The profile's totals reconcile with the legacy stats.
            let p = armed.profile.unwrap();
            assert_eq!(p.predicate_tests(), plain.stats.predicate_tests);
            assert_eq!(p.matches(), plain.stats.matches);
            assert_eq!(p.tuples, plain.stats.tuples);
        }
    }
}

#[test]
fn profiling_only_retains_no_events() {
    let table = prices_to_table("X", Date::from_ymd(1990, 1, 1), &FIG5_PRICES);
    let r = execute_query(
        EXAMPLE4,
        &table,
        &ExecOptions {
            instrument: Instrument::profiling(),
            ..Default::default()
        },
    )
    .unwrap();
    let p = r.profile.unwrap();
    assert_eq!(p.merged_events().count(), 0);
    // …but the metrics registry is fully populated.
    assert_eq!(p.predicate_tests(), r.stats.predicate_tests);
    assert!(p.totals.shifts.count() > 0);
}

#[test]
fn trace_capacity_bounds_retention_deterministically() {
    let table = prices_to_table("X", Date::from_ymd(1990, 1, 1), &FIG5_PRICES);
    let run = |capacity| {
        execute_query(
            EXAMPLE4,
            &table,
            &ExecOptions {
                instrument: Instrument {
                    trace_capacity: capacity,
                    ..Instrument::tracing()
                },
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap()
    };
    let full = run(4096);
    let bounded = run(8);
    let total = full.merged_events().count();
    assert!(total > 8);
    assert_eq!(bounded.clusters[0].events.len(), 8);
    assert_eq!(bounded.clusters[0].events_dropped, (total - 8) as u64);
    // The bounded window is the most recent suffix of the full stream.
    let tail: Vec<TraceEvent> = full
        .merged_events()
        .skip(total - 8)
        .map(|(_, e)| *e)
        .collect();
    assert_eq!(bounded.clusters[0].events, tail);
    // Metrics are unaffected by event-retention bounds.
    assert_eq!(bounded.predicate_tests(), full.predicate_tests());
}

#[test]
fn governor_trip_lands_in_profile_and_event_stream() {
    let table = multi_cluster_table(&[
        ("AAA", &[10.0, 12.0, 9.0, 11.0, 8.0][..]),
        ("BBB", &[5.0, 7.0, 6.0][..]),
    ]);
    let src = "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
               WHERE Y.price > X.price";
    let err = execute_query(
        src,
        &table,
        &ExecOptions {
            governor: Governor::unlimited().with_max_steps(2),
            instrument: Instrument::tracing(),
            ..Default::default()
        },
    )
    .unwrap_err();
    let ExecError::Governed { trip, partial } = err else {
        panic!("expected governed termination");
    };
    assert_eq!(trip.reason.trace_cause(), TripCause::StepBudget);
    // The profile travels inside the partial result and names the cause.
    let p = partial.profile.expect("profile survives the trip");
    assert_eq!(p.totals.trip, Some(TripCause::StepBudget));
    let last = p.merged_events().last().expect("events retained");
    assert!(
        matches!(
            last.1,
            TraceEvent::GovernorTrip {
                cause: TripCause::StepBudget
            }
        ),
        "{last:?}"
    );
    assert!(p.to_json().contains("\"trip\":\"step_budget\""));
}
