//! Integration: every runnable example of the paper, end to end.

use sqlts_core::engine::{find_matches, SearchOptions};
use sqlts_core::{
    compile, execute_query, CompileOptions, EngineKind, EvalCounter, ExecOptions, FirstTuplePolicy,
    SearchTrace,
};
use sqlts_relation::{ColumnType, Date, Schema, Table, Value};

fn quote_schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

fn single_stock(prices: &[f64]) -> Table {
    let mut t = Table::new(quote_schema());
    for (i, &p) in prices.iter().enumerate() {
        t.push_row(vec![
            Value::from("IBM"),
            Value::Date(Date::from_days(i as i32)),
            Value::from(p),
        ])
        .unwrap();
    }
    t
}

/// Example 2: maximal periods in which the price fell more than 50%.
#[test]
fn example2_maximal_falling_period() {
    // 100 → 90 → 70 → 45 (cumulative −55%) → 60.
    let table = single_stock(&[100.0, 90.0, 70.0, 45.0, 60.0]);
    let result = execute_query(
        "SELECT X.name, X.date AS start_date, Z.previous.date AS end_date \
         FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y, Z) \
         WHERE Y.price < Y.previous.price AND Z.previous.price < 0.5 * X.price",
        &table,
        &ExecOptions {
            policy: FirstTuplePolicy::Fail,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.table.len(), 1);
    // X binds the day *before* the fall (price 100, day 0); the falling
    // period ends at the 45 (day 3); Z is the rebound day.
    assert_eq!(result.table.cell(0, 1).to_string(), "1970-01-01");
    assert_eq!(result.table.cell(0, 2).to_string(), "1970-01-04");
}

/// Example 3: three consecutive closing prices 10, 11, 15.
#[test]
fn example3_constant_equalities() {
    let table = single_stock(&[9.0, 10.0, 11.0, 15.0, 11.0, 10.0, 11.0, 15.0]);
    for engine in [EngineKind::Naive, EngineKind::Ops] {
        let result = execute_query(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE X.price = 10 AND Y.price = 11 AND Z.price = 15",
            &table,
            &ExecOptions {
                engine,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.table.len(), 2, "{engine:?}");
    }
}

/// Example 4 over the §4.2.1 sequence, with the Figure 5 cost comparison.
#[test]
fn example4_figure5_paths() {
    let prices = [
        55.0, 50.0, 45.0, 57.0, 54.0, 50.0, 47.0, 49.0, 45.0, 42.0, 55.0, 57.0, 59.0, 60.0, 57.0,
    ];
    let table = single_stock(&prices);
    let query = compile(
        "SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
         WHERE A.price < A.previous.price \
         AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
         AND C.price > C.previous.price AND C.price < 52 \
         AND D.price > D.previous.price",
        table.schema(),
        &CompileOptions::default(),
    )
    .unwrap();
    let clusters = table.cluster_by(&[], &["date"]).unwrap();
    let mut lens = Vec::new();
    for engine in [EngineKind::Naive, EngineKind::Ops] {
        let mut trace = SearchTrace::new();
        let counter = EvalCounter::new();
        find_matches(
            &query.elements,
            &clusters[0],
            engine,
            &SearchOptions {
                policy: FirstTuplePolicy::Fail,
            },
            &counter,
            Some(&mut trace),
        );
        assert_eq!(trace.path_len() as u64, counter.total());
        lens.push(trace.path_len());
    }
    assert!(
        lens[1] < lens[0],
        "OPS path ({}) must be shorter than naive ({})",
        lens[1],
        lens[0]
    );
}

/// Example 4 in full: the five-variable query with the cluster filter
/// `X.name = 'IBM'`, over a two-stock table where only IBM matches.
#[test]
fn example4_full_query_with_name_filter() {
    let mut table = Table::new(quote_schema());
    // IBM: drop, drop-into-band, rise-under-52, rise.
    // MSFT: the same shape, but the name filter must exclude it.
    for (name, prices) in [
        ("IBM", [55.0, 48.0, 45.0, 51.0, 53.0]),
        ("MSFT", [55.0, 48.0, 45.0, 51.0, 53.0]),
    ] {
        for (i, p) in prices.iter().enumerate() {
            table
                .push_row(vec![
                    Value::from(name),
                    Value::Date(Date::from_days(i as i32)),
                    Value::from(*p),
                ])
                .unwrap();
        }
    }
    let src = "SELECT X.date AS start_date, X.price, U.date AS end_date, U.price \
               FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z, T, U) \
               WHERE X.name='IBM' \
               AND Y.price < X.price \
               AND Z.price < Y.price AND Z.price > 40 AND Z.price < 50 \
               AND T.price > Z.price AND T.price < 52 \
               AND U.price > T.price";
    for engine in [EngineKind::Naive, EngineKind::Ops] {
        let result = execute_query(
            src,
            &table,
            &ExecOptions {
                engine,
                policy: FirstTuplePolicy::VacuousTrue,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.table.len(), 1, "{engine:?}");
        assert_eq!(result.table.cell(0, 1), &Value::from(55.0), "{engine:?}");
        assert_eq!(result.table.cell(0, 3), &Value::from(53.0), "{engine:?}");
    }
}

/// Example 8: rising, falling, rising periods with FIRST/LAST output.
#[test]
fn example8_three_periods() {
    // The §5 count example: 20 21 23 24 22 20 18 15 14 18 21.
    let prices = [
        20.0, 21.0, 23.0, 24.0, 22.0, 20.0, 18.0, 15.0, 14.0, 18.0, 21.0,
    ];
    let table = single_stock(&prices);
    let result = execute_query(
        "SELECT X.name, FIRST(X).date AS sdate, LAST(Z).date AS edate \
         FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, *Y, *Z) \
         WHERE X.price > X.previous.price AND Y.price < Y.previous.price \
         AND Z.price > Z.previous.price",
        &table,
        &ExecOptions {
            policy: FirstTuplePolicy::VacuousTrue,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.table.len(), 1);
    assert_eq!(result.table.cell(0, 1).to_string(), "1970-01-01");
    assert_eq!(result.table.cell(0, 2).to_string(), "1970-01-11");
}

/// Example 9 compiles, runs, and its optimizer artifacts match §5.1.
#[test]
fn example9_runs_and_optimizes() {
    use sqlts_core::matrices::{PrecondMatrices, Predicates};
    use sqlts_core::star_shift_next;
    let query_src = "SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
         FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, Y, *Z, *T, U, *V, S) \
         WHERE X.price > X.previous.price \
         AND 30 < Y.price AND Y.price < 40 \
         AND Z.price < Z.previous.price \
         AND T.price > T.previous.price \
         AND 35 < U.price AND U.price < 40 \
         AND V.price < V.previous.price \
         AND S.price < 30";
    let query = compile(query_src, &quote_schema(), &CompileOptions::default()).unwrap();
    let pattern = Predicates::new(&query.elements);
    let pre = PrecondMatrices::build(pattern);
    let sn = star_shift_next(pattern, &pre);
    assert_eq!(sn.shift(6), 3);
    assert_eq!(sn.next(6), 1);

    // A crafted series matching the four-period shape (greedy star
    // boundaries in mind: each star's run must END on the tuple that
    // starts the next element):
    let prices = [
        28.0, 31.0, 34.0, 38.0, // *X rising run
        33.0, // Y: ends the rise, inside (30,40)
        31.0, // *Z falling run
        36.0, 39.0, // *T rising run
        38.0, // U: ends the rise, inside (35,40)
        33.0, 29.0, // *V falling run
        29.5, // S: ends the fall, below 30
    ];
    let table = single_stock(&prices);
    for engine in [EngineKind::Naive, EngineKind::Ops] {
        let result = execute_query(
            query_src,
            &table,
            &ExecOptions {
                engine,
                policy: FirstTuplePolicy::VacuousTrue,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.table.len(), 1, "{engine:?}");
    }
}

/// Example 10 (the relaxed double bottom) on a crafted miniature.
#[test]
fn example10_relaxed_double_bottom_miniature() {
    // flat, big drop, flat, big rise, flat, big drop, flat, big rise, flat.
    let prices = [
        100.0, 100.5, // X region (no big drop)
        95.0,  // Y: -5.47%
        95.5, 94.8, // Z: flat-ish (±2%)
        99.0, // T: +4.4%
        99.5, // U: flat
        94.0, // V: -5.5%
        94.5, // W: flat
        99.2, // R: +5.0%
        99.5, // S: +0.3% (≤ 2%)
    ];
    let table = single_stock(&prices);
    let query = "SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
         FROM djia SEQUENCE BY date AS (X, *Y, *Z, *T, *U, *V, *W, *R, S) \
         WHERE X.price >= 0.98 * X.previous.price \
         AND Y.price < 0.98 * Y.previous.price \
         AND 0.98 * Z.previous.price < Z.price AND Z.price < 1.02 * Z.previous.price \
         AND T.price > 1.02 * T.previous.price \
         AND 0.98 * U.previous.price < U.price AND U.price < 1.02 * U.previous.price \
         AND V.price < 0.98 * V.previous.price \
         AND 0.98 * W.previous.price < W.price AND W.price < 1.02 * W.previous.price \
         AND R.price > 1.02 * R.previous.price \
         AND S.price <= 1.02 * S.previous.price";
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
    ] {
        let result = execute_query(
            query,
            &table,
            &ExecOptions {
                engine,
                policy: FirstTuplePolicy::VacuousTrue,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.table.len(), 1, "{engine:?}");
        // X.NEXT is the first big-drop day.
        assert_eq!(result.table.cell(0, 1), &Value::from(95.0), "{engine:?}");
        // S.previous is the last flat day before the final rebound's end.
        assert_eq!(result.table.cell(0, 3), &Value::from(99.2), "{engine:?}");
    }
}
