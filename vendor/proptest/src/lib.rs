//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest its tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, [`Strategy`] with
//! `prop_map` / `prop_filter`, integer-range and regex-lite string
//! strategies, tuples, [`Just`], [`prop_oneof!`],
//! [`collection::vec`](collection::vec()), and `bool::ANY`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   derived seed; inputs are regenerable by rerunning the test (seeds are
//!   a pure function of the test's module path and name).
//! * **Regex strategies** support the fragment the tests use: sequences
//!   of `.`, `[...]` classes (with ranges) and literal characters, each
//!   optionally repeated `{m}` / `{m,n}`.
//! * Case count comes from the config (default 256) and can be scaled
//!   down via the `PROPTEST_CASES` environment variable.

pub mod test_runner {
    //! Deterministic test driver machinery.

    /// xoshiro256** — private PRNG for input generation (independent of
    /// the workspace's `rand` stand-in on purpose: proptest streams carry
    /// no calibration requirements).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a over the name) so every
        /// run of a given test replays the same inputs.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::from_seed(h)
        }

        /// Seed directly from a `u64` (SplitMix64 expansion).
        pub fn from_seed(seed: u64) -> TestRng {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            TestRng {
                s: if s == [0; 4] { [1, 2, 3, 4] } else { s },
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform sample below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// A uniform `u128` below `bound` (`bound > 0`).
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            let v = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            v % bound
        }
    }

    /// Per-test configuration (subset of proptest's `Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` env cap.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                Some(cap) => self.cases.min(cap),
                None => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Prints the failing case id if the body panics (no shrinking here,
    /// but the seed is deterministic so the case replays on rerun).
    pub struct CaseGuard {
        name: &'static str,
        case: u32,
        armed: bool,
    }

    impl CaseGuard {
        /// Arm a guard for one case.
        pub fn new(name: &'static str, case: u32) -> CaseGuard {
            CaseGuard {
                name,
                case,
                armed: true,
            }
        }

        /// The case finished cleanly.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest: {} failed at case {} (deterministic; rerun reproduces it)",
                    self.name, self.case
                );
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `f` returns true (regenerating up
        /// to a bounded number of times).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 candidates in a row",
                self.whence
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Object-safe strategy surface, for [`OneOf`] arms.
    pub trait DynStrategy<V> {
        /// Draw one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> V;

        /// Clone into a fresh box.
        fn clone_box(&self) -> Box<dyn DynStrategy<V>>;
    }

    impl<S> DynStrategy<S::Value> for S
    where
        S: Strategy + Clone + 'static,
    {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }

        fn clone_box(&self) -> Box<dyn DynStrategy<S::Value>> {
            Box::new(self.clone())
        }
    }

    /// Box a strategy for use as a [`OneOf`] arm.
    pub fn boxed<S>(s: S) -> Box<dyn DynStrategy<S::Value>>
    where
        S: Strategy + Clone + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between strategies (built by [`prop_oneof!`](crate::prop_oneof)).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> OneOf<V> {
        /// Build from boxed arms.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> OneOf<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Clone for OneOf<V> {
        fn clone(&self) -> OneOf<V> {
            OneOf {
                arms: self.arms.iter().map(|a| a.clone_box()).collect(),
            }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].dyn_generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty => $sample:ident),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = rng.$sample(span);
                    ((self.start as i128).wrapping_add(off as i128)) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span =
                        (*self.end() as i128).wrapping_sub(*self.start() as i128) as u128 + 1;
                    let off = rng.$sample(span);
                    ((*self.start() as i128).wrapping_add(off as i128)) as $ty
                }
            }
        )*};
    }

    int_range_strategy! {
        i8 => below_u128, i16 => below_u128, i32 => below_u128, i64 => below_u128,
        u8 => below_u128, u16 => below_u128, u32 => below_u128, u64 => below_u128,
        usize => below_u128, isize => below_u128,
    }

    // i128 spans can exceed u128::MAX / 2 only for pathological ranges the
    // tests never use; a direct impl keeps the arithmetic in range.
    impl Strategy for core::ops::Range<i128> {
        type Value = i128;

        fn generate(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u128;
            self.start.wrapping_add(rng.below_u128(span) as i128)
        }
    }

    impl Strategy for core::ops::RangeInclusive<i128> {
        type Value = i128;

        fn generate(&self, rng: &mut TestRng) -> i128 {
            let span = self.end().wrapping_sub(*self.start()) as u128;
            let off = if span == u128::MAX {
                ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
            } else {
                rng.below_u128(span + 1)
            };
            self.start().wrapping_add(off as i128)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }

    mod regex_lite {
        //! `&str` strategies: the regex fragment the tests use.

        use super::Strategy;
        use crate::test_runner::TestRng;

        #[derive(Clone, Debug)]
        enum CharSet {
            /// `.` — any printable-ish character.
            Any,
            /// `[...]` — explicit alternatives.
            OneOf(Vec<char>),
        }

        #[derive(Clone, Debug)]
        struct Atom {
            set: CharSet,
            min: usize,
            max: usize,
        }

        fn parse(pattern: &str) -> Vec<Atom> {
            let mut chars = pattern.chars().peekable();
            let mut atoms = Vec::new();
            while let Some(c) = chars.next() {
                let set = match c {
                    '.' => CharSet::Any,
                    '[' => {
                        let mut opts = Vec::new();
                        let mut prev: Option<char> = None;
                        loop {
                            match chars.next() {
                                None => panic!("unterminated [class in {pattern:?}"),
                                Some(']') => break,
                                Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                    let lo = prev.take().unwrap();
                                    let hi = chars.next().unwrap();
                                    for code in lo as u32..=hi as u32 {
                                        opts.push(char::from_u32(code).unwrap());
                                    }
                                }
                                Some('\\') => {
                                    if let Some(p) = prev.replace(chars.next().unwrap()) {
                                        opts.push(p);
                                    }
                                }
                                Some(other) => {
                                    if let Some(p) = prev.replace(other) {
                                        opts.push(p);
                                    }
                                }
                            }
                        }
                        if let Some(p) = prev {
                            opts.push(p);
                        }
                        assert!(!opts.is_empty(), "empty [class] in {pattern:?}");
                        CharSet::OneOf(opts)
                    }
                    '\\' => CharSet::OneOf(vec![chars.next().expect("dangling escape")]),
                    lit => CharSet::OneOf(vec![lit]),
                };
                let (min, max) = if chars.peek() == Some(&'{') {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n}"),
                            hi.trim().parse().expect("bad {m,n}"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {m}");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                atoms.push(Atom { set, min, max });
            }
            atoms
        }

        fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
            match set {
                CharSet::OneOf(opts) => opts[rng.below(opts.len() as u64) as usize],
                CharSet::Any => {
                    // Mostly printable ASCII; occasionally an arbitrary
                    // scalar so "unicode soup" tests see real unicode.
                    if rng.below(8) == 0 {
                        loop {
                            let code = rng.below(0x110000) as u32;
                            if let Some(c) = char::from_u32(code) {
                                if c != '\n' {
                                    return c;
                                }
                            }
                        }
                    }
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
                }
            }
        }

        impl Strategy for &'static str {
            type Value = String;

            fn generate(&self, rng: &mut TestRng) -> String {
                let mut out = String::new();
                for atom in parse(self) {
                    let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                    for _ in 0..n {
                        out.push(sample_char(&atom.set, rng));
                    }
                }
                out
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification: a fixed `usize` or a `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything a test file needs, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each embedded `#[test]` function over many generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(100))]
///     #[test]
///     fn commutes(a in 0i64..10, b in 0i64..10) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            const __NAME: &str = concat!(module_path!(), "::", stringify!($name));
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(__NAME);
            for __case in 0..__config.resolved_cases() {
                let mut __guard = $crate::test_runner::CaseGuard::new(__NAME, __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
                __guard.disarm();
            }
        }
    )*};
}

/// Assert within a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::for_test("ranges_and_maps");
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn regex_lite_classes() {
        let mut rng = TestRng::for_test("regex_lite_classes");
        for _ in 0..200 {
            let s = "[ab]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));

            let t = "[a-cZ]{2}".generate(&mut rng);
            assert_eq!(t.chars().count(), 2);
            assert!(t.chars().all(|c| matches!(c, 'a'..='c' | 'Z')));

            let u = ".{0,5}".generate(&mut rng);
            assert!(u.chars().count() <= 5);
        }
    }

    #[test]
    fn oneof_covers_arms() {
        let mut rng = TestRng::for_test("oneof_covers_arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::for_test("vec_sizes");
        let fixed = crate::collection::vec(0i32..5, 3);
        let ranged = crate::collection::vec(0i32..5, 0..4);
        for _ in 0..100 {
            assert_eq!(fixed.generate(&mut rng).len(), 3);
            assert!(ranged.generate(&mut rng).len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_smoke(a in 0i64..100, b in 0i64..100, flip in crate::bool::ANY) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(usize::from(flip) <= 1);
        }
    }
}
