//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the small API subset it uses: [`rngs::SmallRng`], the
//! [`Rng`] / [`SeedableRng`] traits, uniform ranges, `gen::<f64>()`, and
//! `gen_bool`.
//!
//! Every algorithm matches rand 0.8.5 bit-for-bit on 64-bit platforms:
//!
//! * `SmallRng` is xoshiro256++;
//! * `SeedableRng::seed_from_u64` expands the seed with PCG32 (as in
//!   rand_core 0.6);
//! * integer `gen_range` uses Lemire's widening-multiply rejection method
//!   with rand's exact `zone` computation;
//! * `gen::<f64>()` places 53 random bits in `[0, 1)`;
//! * `gen_bool(p)` is rand's fixed-point Bernoulli (`u64` scale).
//!
//! Keeping the streams identical means every seeded workload in
//! `sqlts-datagen` produces the exact series the experiments were
//! calibrated against.

/// Core trait: a source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it exactly like rand_core 0.6:
    /// a PCG32 stream fills the seed four bytes at a time.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A sample from the standard distribution of `T`.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    ///
    /// Matches rand 0.8's `Bernoulli`: `p` is converted to a 64-bit
    /// fixed-point integer and compared against one `u64` draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p == 1.0 {
            // rand's ALWAYS_TRUE path returns without drawing.
            return true;
        }
        // SCALE = 2^64 as f64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators this workspace uses.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            // rand's xoshiro256plusplus takes the upper half.
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    //! Sampling machinery (subset of `rand::distributions`).

    use super::RngCore;

    /// Types samplable from the "standard" distribution.
    pub trait Standard: Sized {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Standard for f64 {
        /// 53 random bits scaled into `[0, 1)` — rand's multiply-based
        /// `Standard` for `f64`.
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            let value = rng.next_u64() >> 11;
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub mod uniform {
        //! Uniform range sampling, bit-compatible with rand 0.8.5's
        //! `UniformInt::sample_single_inclusive`.

        use super::super::RngCore;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draw one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Widening multiply returning `(high, low)` halves.
        trait WideningMul: Sized {
            fn wmul(self, rhs: Self) -> (Self, Self);
        }

        impl WideningMul for u32 {
            #[inline]
            fn wmul(self, rhs: u32) -> (u32, u32) {
                let p = self as u64 * rhs as u64;
                ((p >> 32) as u32, p as u32)
            }
        }

        impl WideningMul for u64 {
            #[inline]
            fn wmul(self, rhs: u64) -> (u64, u64) {
                let p = self as u128 * rhs as u128;
                ((p >> 64) as u64, p as u64)
            }
        }

        impl WideningMul for usize {
            #[inline]
            fn wmul(self, rhs: usize) -> (usize, usize) {
                let (hi, lo) = (self as u64).wmul(rhs as u64);
                (hi as usize, lo as usize)
            }
        }

        impl WideningMul for u128 {
            // 128×128→256 via schoolbook halves (matches rand's u128 wmul).
            #[inline]
            fn wmul(self, rhs: u128) -> (u128, u128) {
                const LOWER_MASK: u128 = u64::MAX as u128;
                let mut low = (self & LOWER_MASK).wrapping_mul(rhs & LOWER_MASK);
                let mut t = low >> 64;
                low &= LOWER_MASK;
                t += (self >> 64).wrapping_mul(rhs & LOWER_MASK);
                low += (t & LOWER_MASK) << 64;
                let mut high = t >> 64;
                t = low >> 64;
                low &= LOWER_MASK;
                t += (rhs >> 64).wrapping_mul(self & LOWER_MASK);
                low += (t & LOWER_MASK) << 64;
                high += t >> 64;
                high += (self >> 64).wrapping_mul(rhs >> 64);
                (high, low)
            }
        }

        macro_rules! uniform_int_impl {
            ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident) => {
                impl SampleRange<$ty> for core::ops::Range<$ty> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "cannot sample empty range");
                        // rand 0.8.5 routes the exclusive form through the
                        // inclusive sampler with `high - 1`.
                        (self.start..=self.end - 1).sample_single(rng)
                    }
                }

                impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (low, high) = (*self.start(), *self.end());
                        assert!(low <= high, "cannot sample empty range");
                        let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                        // Range 0 means the whole integer domain.
                        if range == 0 {
                            return rng.$gen() as $ty;
                        }
                        let zone = if (<$unsigned>::MAX as u128) <= u16::MAX as u128 {
                            // Small types use the exact modulo zone.
                            let unsigned_max: $u_large = <$u_large>::MAX;
                            let ints_to_reject = (unsigned_max - range + 1) % range;
                            unsigned_max - ints_to_reject
                        } else {
                            // Conservative power-of-two zone.
                            (range << range.leading_zeros()).wrapping_sub(1)
                        };
                        loop {
                            let v: $u_large = rng.$gen() as $u_large;
                            let (hi, lo) = v.wmul(range);
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        // Helper draws matching rand's `rng.gen::<$u_large>()`.
        trait Draws {
            fn draw_u32(&mut self) -> u32;
            fn draw_u64(&mut self) -> u64;
            fn draw_u128(&mut self) -> u128;
        }

        impl<R: RngCore + ?Sized> Draws for R {
            #[inline]
            fn draw_u32(&mut self) -> u32 {
                self.next_u32()
            }
            #[inline]
            fn draw_u64(&mut self) -> u64 {
                self.next_u64()
            }
            #[inline]
            fn draw_u128(&mut self) -> u128 {
                // rand's Standard for u128: low 64 bits drawn first.
                let lo = self.next_u64() as u128;
                let hi = self.next_u64() as u128;
                (hi << 64) | lo
            }
        }

        uniform_int_impl!(i8, u8, u32, draw_u32);
        uniform_int_impl!(i16, u16, u32, draw_u32);
        uniform_int_impl!(i32, u32, u32, draw_u32);
        uniform_int_impl!(i64, u64, u64, draw_u64);
        uniform_int_impl!(i128, u128, u128, draw_u128);
        uniform_int_impl!(u8, u8, u32, draw_u32);
        uniform_int_impl!(u16, u16, u32, draw_u32);
        uniform_int_impl!(u32, u32, u32, draw_u32);
        uniform_int_impl!(u64, u64, u64, draw_u64);
        uniform_int_impl!(u128, u128, u128, draw_u128);
        uniform_int_impl!(isize, usize, usize, draw_u64);
        uniform_int_impl!(usize, usize, usize, draw_u64);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(0usize..10);
            assert!(y < 10);
            let z = rng.gen_range(0u8..3);
            assert!(z < 3);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_range_works() {
        let mut rng = SmallRng::seed_from_u64(1);
        // u64::MIN..=u64::MAX has range == 0 internally.
        let _: u64 = rng.gen_range(u64::MIN..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "{heads}");
    }

    #[test]
    fn bool_bias_matches_fixed_point() {
        // p = 0.5 must flip on the top bit exactly.
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let mut probe = rng.clone();
            let v = probe.next_u64();
            assert_eq!(rng.gen_bool(0.5), v < 1u64 << 63);
        }
    }
}
