//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simpler than real criterion — warm up, then time
//! `sample_size` samples whose iteration counts are sized to fill the
//! measurement window — and reports min / mean / max ns per iteration on
//! stdout.  There is no statistical regression analysis, HTML report, or
//! baseline store; the numbers are for comparing engines within a single
//! run, which is how this repository's benches use them.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo bench passes `--bench` (and test harness args); treat the
        // first free-standing argument as a name filter like criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Apply command-line configuration (no-op subset).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run(id, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(id, |b| f(b, input));
        self
    }

    /// Benchmark `f` with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id, f);
        self
    }

    /// Finish the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }

    fn run<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self._criterion.matches(&full_id) {
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_up_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_up_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter = (bencher.elapsed / bencher.iters as u32).max(Duration::from_nanos(1));
            // Grow the batch until one call covers ~1/10 of the warm-up.
            if bencher.elapsed < self.warm_up_time / 10 {
                bencher.iters = (bencher.iters * 2).min(1 << 24);
            }
        }

        // Size samples so the whole measurement fits the window.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 32) as u64;

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns.first().copied().unwrap_or(0.0);
        let max = samples_ns.last().copied().unwrap_or(0.0);
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len().max(1) as f64;
        println!(
            "{full_id:<60} [{} {} {}] ({} samples x {iters} iters)",
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            samples_ns.len(),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures; passed to benchmark functions.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called in a batch whose size the harness controls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// A benchmark identifier: function name and/or parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
